//! Channel faults on the *monitor's* telemetry stream.
//!
//! [`AttackInjector`](crate::AttackInjector) corrupts the vehicle's sensor
//! frames before the control stack sees them; a [`ChannelFaultInjector`]
//! instead corrupts the samples forwarded from the stack to an observing
//! monitor — the link a guardian listens on. The two are independent: a
//! clean vehicle can have a faulty telemetry link and vice versa, which is
//! exactly the axis the T5 robustness experiment sweeps.
//!
//! Faults are per-sample Bernoulli events at [`FaultSpec::rate`] inside the
//! spec's [`Window`], deterministic for a given seed.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::Window;

/// The kind of telemetry-link fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The sample is lost: nothing is delivered.
    Dropout,
    /// The link freezes: the previously delivered value is repeated instead
    /// of the current one (dropped when nothing was delivered yet).
    StaleRepeat,
    /// The sample is withheld and delivered on the channel's next
    /// opportunity — late, and out of order with the sample it then
    /// accompanies.
    TimestampJitter,
    /// The sample starts a short burst of NaN/±Inf garbage replacing the
    /// next few samples on the channel.
    NanBurst,
    /// The sample is delivered now *and* re-delivered (stale) on the
    /// channel's next opportunity.
    Duplicate,
}

impl FaultKind {
    /// Every fault kind, in sweep order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Dropout,
        FaultKind::StaleRepeat,
        FaultKind::TimestampJitter,
        FaultKind::NanBurst,
        FaultKind::Duplicate,
    ];

    /// Short lowercase name (stable; used in reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::StaleRepeat => "stale_repeat",
            FaultKind::TimestampJitter => "timestamp_jitter",
            FaultKind::NanBurst => "nan_burst",
            FaultKind::Duplicate => "duplicate",
        }
    }
}

/// A complete fault configuration: what, how often, when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The fault kind.
    pub kind: FaultKind,
    /// Per-sample probability of the fault firing, in `[0, 1]`.
    pub rate: f64,
    /// When the fault is armed.
    pub window: Window,
}

impl FaultSpec {
    /// Creates a spec. Panics when `rate` is outside `[0, 1]`.
    pub fn new(kind: FaultKind, rate: f64, window: Window) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate outside [0, 1]");
        FaultSpec { kind, rate, window }
    }

    /// A deterministic injector for this spec.
    pub fn injector(self, seed: u64) -> ChannelFaultInjector {
        ChannelFaultInjector::new(self, seed)
    }
}

/// What [`ChannelFaultInjector::apply`] delivered for one offered sample:
/// zero, one or two values (a withheld or duplicated sample from an earlier
/// cycle can ride along with the current one).
#[derive(Debug, Clone, Copy, Default)]
pub struct Delivery {
    vals: [f64; 2],
    len: u8,
}

impl Delivery {
    fn push(&mut self, value: f64) {
        self.vals[usize::from(self.len)] = value;
        self.len += 1;
    }

    /// The delivered values in arrival order: the current cycle's delivery
    /// first, then any stale sample owed from an earlier cycle.
    pub fn as_slice(&self) -> &[f64] {
        &self.vals[..usize::from(self.len)]
    }
}

#[derive(Debug, Clone, Default)]
struct ChannelState {
    /// Last value actually delivered, for [`FaultKind::StaleRepeat`].
    last_delivered: Option<f64>,
    /// A value owed to the channel on its next opportunity (jitter's
    /// withheld sample or duplicate's copy).
    pending: Option<f64>,
    /// Remaining garbage samples of an active NaN burst.
    burst_left: u8,
}

/// One channel's mutable fault state inside a [`FaultInjectorState`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultChannelState {
    /// Channel name.
    pub channel: String,
    /// Last value actually delivered on the channel.
    pub last_delivered: Option<f64>,
    /// A value owed to the channel on its next opportunity.
    pub pending: Option<f64>,
    /// Remaining garbage samples of an active NaN burst.
    pub burst_left: u8,
}

/// A plain-data snapshot of a [`ChannelFaultInjector`]'s mutable state,
/// for mid-run checkpoints. Channels are listed in name order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjectorState {
    /// The injector RNG's word state.
    pub rng: [u64; 4],
    /// Per-channel state, sorted by channel name.
    pub channels: Vec<FaultChannelState>,
    /// Samples offered so far.
    pub offered: u64,
    /// Samples lost outright.
    pub dropped: u64,
    /// Samples replaced, delayed, duplicated or poisoned.
    pub corrupted: u64,
}

/// A stateful, deterministic fault injector over named telemetry channels.
///
/// Call [`ChannelFaultInjector::apply`] for every sample offered to the
/// monitor; feed each value of the returned [`Delivery`] in order.
#[derive(Debug, Clone)]
pub struct ChannelFaultInjector {
    spec: FaultSpec,
    rng: SmallRng,
    channels: HashMap<String, ChannelState>,
    offered: u64,
    dropped: u64,
    corrupted: u64,
}

impl ChannelFaultInjector {
    /// Creates an injector for `spec`, deterministic in `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        ChannelFaultInjector {
            spec,
            rng: SmallRng::seed_from_u64(seed ^ 0xFA_0717_u64),
            channels: HashMap::new(),
            offered: 0,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// The injected fault configuration.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Samples offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Samples lost outright (dropouts, plus stale-repeats with no history).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Samples replaced, delayed, duplicated or poisoned.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Captures the injector's mutable state as plain data for mid-run
    /// checkpoints. Channels are listed in name order, so equal states
    /// produce equal snapshots.
    pub fn state(&self) -> FaultInjectorState {
        let mut channels: Vec<FaultChannelState> = self
            .channels
            .iter()
            .map(|(name, s)| FaultChannelState {
                channel: name.clone(),
                last_delivered: s.last_delivered,
                pending: s.pending,
                burst_left: s.burst_left,
            })
            .collect();
        channels.sort_by(|a, b| a.channel.cmp(&b.channel));
        FaultInjectorState {
            rng: self.rng.state(),
            channels,
            offered: self.offered,
            dropped: self.dropped,
            corrupted: self.corrupted,
        }
    }

    /// Reinstates a state captured with [`ChannelFaultInjector::state`].
    /// The injector must have been built from the same spec/seed.
    pub fn restore(&mut self, s: &FaultInjectorState) {
        self.rng = SmallRng::from_state(s.rng);
        self.channels = s
            .channels
            .iter()
            .map(|c| {
                (
                    c.channel.clone(),
                    ChannelState {
                        last_delivered: c.last_delivered,
                        pending: c.pending,
                        burst_left: c.burst_left,
                    },
                )
            })
            .collect();
        self.offered = s.offered;
        self.dropped = s.dropped;
        self.corrupted = s.corrupted;
    }

    /// Offers the sample `(t, value)` on `channel` and returns what the
    /// faulty link delivers, in arrival order (stale owed samples last).
    pub fn apply(&mut self, channel: &str, t: f64, value: f64) -> Delivery {
        self.offered += 1;
        if !self.channels.contains_key(channel) {
            self.channels
                .insert(channel.to_owned(), ChannelState::default());
        }
        let state = self
            .channels
            .get_mut(channel)
            .expect("channel state just inserted");
        let mut out = Delivery::default();
        let owed = state.pending.take();
        if state.burst_left > 0 {
            state.burst_left -= 1;
            self.corrupted += 1;
            out.push(if state.burst_left.is_multiple_of(2) {
                f64::NAN
            } else {
                f64::INFINITY
            });
        } else if !self.spec.window.contains(t) || self.rng.gen::<f64>() >= self.spec.rate {
            state.last_delivered = Some(value);
            out.push(value);
        } else {
            match self.spec.kind {
                FaultKind::Dropout => self.dropped += 1,
                FaultKind::StaleRepeat => match state.last_delivered {
                    Some(stale) => {
                        self.corrupted += 1;
                        out.push(stale);
                    }
                    None => self.dropped += 1,
                },
                FaultKind::TimestampJitter => {
                    self.corrupted += 1;
                    state.pending = Some(value);
                }
                FaultKind::NanBurst => {
                    self.corrupted += 1;
                    // This sample plus the next 1..=5 become garbage.
                    state.burst_left = 1 + (self.rng.gen::<u32>() % 5) as u8;
                    out.push(f64::NAN);
                }
                FaultKind::Duplicate => {
                    self.corrupted += 1;
                    state.last_delivered = Some(value);
                    state.pending = Some(value);
                    out.push(value);
                }
            }
        }
        // Anything owed from an earlier cycle (jitter's withheld sample,
        // duplicate's copy) arrives *after* the newer delivery — late and
        // out of order, so a sample-and-hold consumer ends the cycle on
        // the stale value.
        if let Some(old) = owed {
            out.push(old);
        }
        out
    }
}

// The campaign engine shares injectors across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ChannelFaultInjector>();
    assert_send_sync::<FaultSpec>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(kind: FaultKind, rate: f64) -> ChannelFaultInjector {
        FaultSpec::new(kind, rate, Window::always()).injector(7)
    }

    /// Drives `n` samples (values `0..n`) through one channel, collecting
    /// all deliveries.
    fn drain(inj: &mut ChannelFaultInjector, n: u32) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = f64::from(i) * 0.1;
            out.extend_from_slice(inj.apply("gnss_x", t, f64::from(i)).as_slice());
        }
        out
    }

    #[test]
    fn zero_rate_is_transparent() {
        for kind in FaultKind::ALL {
            let mut inj = injector(kind, 0.0);
            let delivered = drain(&mut inj, 50);
            assert_eq!(delivered, (0..50).map(f64::from).collect::<Vec<_>>());
            assert_eq!(inj.dropped(), 0);
            assert_eq!(inj.corrupted(), 0);
        }
    }

    #[test]
    fn injectors_are_deterministic_per_seed() {
        for kind in FaultKind::ALL {
            let spec = FaultSpec::new(kind, 0.3, Window::always());
            let a = drain(&mut spec.injector(3), 200);
            let b = drain(&mut spec.injector(3), 200);
            assert_eq!(a.len(), b.len());
            assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
            let c = drain(&mut spec.injector(4), 200);
            assert_ne!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "different seeds must fault differently"
            );
        }
    }

    #[test]
    fn dropout_loses_roughly_rate_of_samples() {
        let mut inj = injector(FaultKind::Dropout, 0.2);
        let delivered = drain(&mut inj, 1000);
        assert_eq!(inj.offered(), 1000);
        assert_eq!(delivered.len() as u64, 1000 - inj.dropped());
        let rate = inj.dropped() as f64 / 1000.0;
        assert!((0.1..0.3).contains(&rate), "observed dropout rate {rate}");
    }

    #[test]
    fn stale_repeat_replays_the_last_delivered_value() {
        let mut inj = injector(FaultKind::StaleRepeat, 0.4);
        let delivered = drain(&mut inj, 300);
        assert_eq!(delivered.len(), 300, "repeats substitute, never drop");
        let mut stale = 0u64;
        for pair in delivered.windows(2) {
            assert!(pair[1] >= pair[0], "only ever replays, never invents");
            if pair[1] == pair[0] {
                stale += 1;
            }
        }
        assert!(stale > 0, "faults at 40% must actually repeat");
        assert_eq!(stale, inj.corrupted());
    }

    #[test]
    fn jitter_delivers_late_and_out_of_order() {
        let mut inj = injector(FaultKind::TimestampJitter, 0.4);
        let delivered = drain(&mut inj, 300);
        // Withheld samples are owed, not lost; only the final sample can
        // still be in flight when the stream ends.
        assert!(delivered.len() >= 299, "{} delivered", delivered.len());
        assert!(
            delivered.windows(2).any(|p| p[1] < p[0]),
            "some pair must arrive out of order"
        );
        // Every delivered value is an offered value, delivered once.
        let mut sorted = delivered.clone();
        sorted.sort_by(f64::total_cmp);
        let expected: Vec<f64> = (0..300).map(f64::from).take(sorted.len()).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn nan_burst_emits_runs_of_non_finite_garbage() {
        let mut inj = injector(FaultKind::NanBurst, 0.1);
        let delivered = drain(&mut inj, 400);
        let garbage = delivered.iter().filter(|v| !v.is_finite()).count();
        assert!(garbage >= 2, "bursts must appear at 10% over 400 samples");
        assert!(
            delivered.iter().any(|v| v.is_nan()) && delivered.iter().any(|v| v.is_infinite()),
            "bursts cycle NaN and Inf"
        );
        assert_eq!(garbage as u64, inj.corrupted());
    }

    #[test]
    fn duplicate_redelivers_values() {
        let mut inj = injector(FaultKind::Duplicate, 0.3);
        let delivered = drain(&mut inj, 300);
        assert!(delivered.len() > 300, "duplicates add deliveries");
        // Only the final sample's copy can still be in flight at the end.
        assert!(delivered.len() as u64 >= 300 + inj.corrupted() - 1);
        // Every value appears at most twice and nothing is invented.
        for i in 0..300u32 {
            let v = f64::from(i);
            let n = delivered.iter().filter(|d| **d == v).count();
            assert!((1..=2).contains(&n), "value {v} delivered {n} times");
        }
    }

    #[test]
    fn faults_respect_the_window() {
        let spec = FaultSpec::new(FaultKind::Dropout, 1.0, Window::new(5.0, 10.0));
        let mut inj = spec.injector(1);
        for i in 0..200 {
            let t = f64::from(i) * 0.1;
            let delivered = inj.apply("wheel_speed", t, 1.0);
            if (5.0..10.0).contains(&t) {
                assert!(delivered.as_slice().is_empty(), "armed window drops all");
            } else {
                assert_eq!(delivered.as_slice(), &[1.0]);
            }
        }
    }

    #[test]
    fn channels_fault_independently() {
        let mut inj = injector(FaultKind::StaleRepeat, 0.5);
        for i in 0..50 {
            let t = f64::from(i) * 0.1;
            inj.apply("a", t, f64::from(i));
            let b = inj.apply("b", t, -f64::from(i));
            for v in b.as_slice() {
                assert!(*v <= 0.0, "channel b never sees channel a's history");
            }
        }
    }

    #[test]
    fn rate_must_be_a_probability() {
        let r =
            std::panic::catch_unwind(|| FaultSpec::new(FaultKind::Dropout, 1.5, Window::always()));
        assert!(r.is_err());
    }
}
