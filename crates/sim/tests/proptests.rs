//! Property-based tests of the simulator substrate's invariants.

use adassure_sim::actuator::{Actuator, ActuatorParams};
use adassure_sim::geometry::{angle_diff, wrap_angle, Vec2};
use adassure_sim::track::Track;
use adassure_sim::vehicle::{Controls, VehicleModel, VehicleState};
use proptest::prelude::*;
use std::f64::consts::PI;

proptest! {
    #[test]
    fn wrap_angle_stays_in_half_open_interval(a in -1e4f64..1e4) {
        let w = wrap_angle(a);
        prop_assert!(w > -PI - 1e-9 && w <= PI + 1e-9);
        // Same direction modulo 2π: (a - w) must be an integer multiple of τ.
        let k = (a - w) / std::f64::consts::TAU;
        prop_assert!((k - k.round()).abs() < 1e-9, "a={a} w={w} k={k}");
    }

    #[test]
    fn angle_diff_is_antisymmetric_mod_tau(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let d1 = angle_diff(a, b);
        let d2 = angle_diff(b, a);
        let sum = wrap_angle(d1 + d2);
        prop_assert!(sum.abs() < 1e-9, "d1 {d1} d2 {d2}");
    }

    #[test]
    fn rotation_preserves_norm_and_inverts(
        x in -1e3f64..1e3,
        y in -1e3f64..1e3,
        angle in -10.0f64..10.0,
    ) {
        let v = Vec2::new(x, y);
        let r = v.rotated(angle);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-6 * v.norm().max(1.0));
        let back = r.rotated(-angle);
        prop_assert!(back.distance(v) < 1e-6 * v.norm().max(1.0));
    }

    #[test]
    fn points_on_a_line_project_to_themselves(s in 0.0f64..100.0) {
        let track = Track::line([0.0, 0.0], [100.0, 0.0], 1.0).unwrap();
        let p = track.point_at(s);
        let proj = track.project(p);
        prop_assert!(proj.cross_track.abs() < 1e-6);
        prop_assert!((proj.station - s).abs() < 1e-6);
    }

    #[test]
    fn circle_projection_recovers_offset(
        s in 0.0f64..150.0,
        offset in -5.0f64..5.0,
    ) {
        let track = Track::circle([0.0, 0.0], 25.0, 0.5).unwrap();
        let s = s % track.length();
        let p = track.point_at(s);
        let heading = track.heading_at(s);
        // Move `offset` to the left of the travel direction.
        let left = Vec2::from_angle(heading).perp();
        let proj = track.project(p + left * offset);
        // Cross-track must recover the signed offset (coarse polyline ⇒
        // centimetre-level tolerance).
        prop_assert!((proj.cross_track - offset).abs() < 0.05,
            "offset {offset} recovered as {}", proj.cross_track);
    }

    #[test]
    fn physics_stays_finite_under_arbitrary_bounded_controls(
        steers in proptest::collection::vec(-1.0f64..1.0, 1..200),
        accels in proptest::collection::vec(-10.0f64..10.0, 1..200),
        dynamic in any::<bool>(),
    ) {
        let model = if dynamic { VehicleModel::dynamic() } else { VehicleModel::kinematic() };
        let mut state = VehicleState::at([0.0, 0.0], 0.0);
        state.speed = 5.0;
        for (s, a) in steers.iter().zip(&accels) {
            state = model.step(&state, Controls::new(*s, *a), 0.01);
            prop_assert!(state.is_finite(), "diverged: {state:?}");
            prop_assert!(state.speed >= 0.0 && state.speed <= model.params.max_speed);
            prop_assert!(state.heading > -PI - 1e-9 && state.heading <= PI + 1e-9);
        }
    }

    #[test]
    fn actuator_respects_range_and_rate(
        commands in proptest::collection::vec(-10.0f64..10.0, 1..100),
        rate in 0.1f64..10.0,
    ) {
        let params = ActuatorParams {
            time_constant: 0.05,
            rate_limit: rate,
            min: -1.0,
            max: 1.0,
        };
        let mut act = Actuator::new(params);
        let mut prev = act.value();
        for c in commands {
            let out = act.step(c, 0.01);
            prop_assert!((-1.0..=1.0).contains(&out));
            prop_assert!((out - prev).abs() <= rate * 0.01 + 1e-12);
            prev = out;
        }
    }

    #[test]
    fn kinematic_yaw_rate_matches_bicycle_relation(
        steer in -0.5f64..0.5,
        speed in 0.5f64..20.0,
    ) {
        let model = VehicleModel::kinematic();
        let mut state = VehicleState::at([0.0, 0.0], 0.0);
        state.speed = speed;
        let next = model.step(&state, Controls::new(steer, 0.0), 0.01);
        let expected = next.speed * steer.tan() / model.params.wheelbase;
        prop_assert!((next.yaw_rate - expected).abs() < 1e-9,
            "yaw {} vs bicycle {expected}", next.yaw_rate);
    }
}
