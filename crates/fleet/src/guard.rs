//! A lightweight per-stream guardian.
//!
//! The full [`adassure` guardian](https://example.invalid/adassure) wraps a
//! control stack and drives the vehicle to a stop; a fleet monitor has no
//! actuation path, so [`StreamGuard`] keeps only the decision layer: a
//! three-mode state machine (nominal → degraded → safe-stop) fed one
//! boolean per cycle — whether a critical alarm is standing — with a
//! confirmation window before safe-stop and hysteretic recovery. It is a
//! pure function of the per-stream cycle sequence, so guarded fleet output
//! stays bit-identical to serial checking.

use adassure_obs::{Guard, Transition, TransitionGrid};

/// Parameters of the per-stream guardian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Consecutive alarmed cycles in degraded mode before safe-stop.
    pub confirm_cycles: u32,
    /// Consecutive clean cycles before degraded/safe-stop returns to
    /// nominal.
    pub recover_cycles: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            confirm_cycles: 3,
            recover_cycles: 10,
        }
    }
}

/// Plain-data snapshot of a [`StreamGuard`], captured with
/// [`StreamGuard::save_state`] and replayed with
/// [`StreamGuard::from_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardState {
    /// The guardian's parameters.
    pub config: GuardConfig,
    /// Current mode.
    pub state: Guard,
    /// Consecutive alarmed cycles (confirmation progress).
    pub alarm_streak: u32,
    /// Consecutive clean cycles (recovery progress).
    pub clean_streak: u32,
    /// Mode-transition counts, row-major `[from][to]`.
    pub grid: [[u64; 3]; 3],
}

/// The per-stream guardian state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct StreamGuard {
    config: GuardConfig,
    state: Guard,
    alarm_streak: u32,
    clean_streak: u32,
    grid: TransitionGrid,
}

impl StreamGuard {
    /// A guardian in nominal mode.
    pub fn new(config: GuardConfig) -> Self {
        StreamGuard {
            config,
            state: Guard::Nominal,
            alarm_streak: 0,
            clean_streak: 0,
            grid: TransitionGrid::new(),
        }
    }

    /// Feeds one closed cycle's alarm status and returns the (possibly
    /// new) mode. `alarmed` is whether a critical alarm is standing —
    /// [`adassure_core::OnlineChecker::open_episode_onset`] at
    /// [`adassure_core::Severity::Critical`].
    pub fn observe(&mut self, alarmed: bool) -> Guard {
        let next = if alarmed {
            self.clean_streak = 0;
            self.alarm_streak = self.alarm_streak.saturating_add(1);
            match self.state {
                Guard::Nominal => Guard::Degraded,
                Guard::Degraded if self.alarm_streak >= self.config.confirm_cycles => {
                    Guard::SafeStop
                }
                other => other,
            }
        } else {
            self.alarm_streak = 0;
            if self.state == Guard::Nominal {
                Guard::Nominal
            } else {
                self.clean_streak = self.clean_streak.saturating_add(1);
                if self.clean_streak >= self.config.recover_cycles {
                    self.clean_streak = 0;
                    Guard::Nominal
                } else {
                    self.state
                }
            }
        };
        if next != self.state {
            self.grid.record(self.state.index(), next.index());
            self.state = next;
        }
        self.state
    }

    /// The current mode.
    pub fn state(&self) -> Guard {
        self.state
    }

    /// Captures the guardian's complete mutable state as plain data, for
    /// checkpointing. Mid-confirmation and mid-recovery streaks are
    /// preserved exactly.
    pub fn save_state(&self) -> GuardState {
        GuardState {
            config: self.config,
            state: self.state,
            alarm_streak: self.alarm_streak,
            clean_streak: self.clean_streak,
            grid: self.grid.counts(),
        }
    }

    /// Rebuilds a guardian from a [`GuardState`]; the restored machine
    /// continues bit-identically to one that ran uninterrupted.
    pub fn from_state(state: GuardState) -> Self {
        StreamGuard {
            config: state.config,
            state: state.state,
            alarm_streak: state.alarm_streak,
            clean_streak: state.clean_streak,
            grid: TransitionGrid::from_counts(state.grid),
        }
    }

    /// Mode transitions so far, as named sparse counts.
    pub fn transitions(&self) -> Vec<Transition> {
        self.grid.sparse([
            Guard::Nominal.name(),
            Guard::Degraded.name(),
            Guard::SafeStop.name(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirmation_window_gates_safe_stop() {
        let mut g = StreamGuard::new(GuardConfig {
            confirm_cycles: 3,
            recover_cycles: 2,
        });
        assert_eq!(g.observe(true), Guard::Degraded, "first alarm degrades");
        assert_eq!(g.observe(true), Guard::Degraded);
        assert_eq!(g.observe(true), Guard::SafeStop, "third consecutive");
        assert_eq!(g.observe(false), Guard::SafeStop, "recovery is hysteretic");
        assert_eq!(g.observe(false), Guard::Nominal);
        assert_eq!(g.transitions().len(), 3);
    }

    #[test]
    fn glitch_does_not_reach_safe_stop() {
        let mut g = StreamGuard::new(GuardConfig::default());
        g.observe(true);
        g.observe(false);
        g.observe(true);
        g.observe(false);
        assert_eq!(g.state(), Guard::Degraded, "alarm streak resets on clean");
    }

    #[test]
    fn nominal_stays_quiet() {
        let mut g = StreamGuard::new(GuardConfig::default());
        for _ in 0..50 {
            assert_eq!(g.observe(false), Guard::Nominal);
        }
        assert!(g.transitions().is_empty());
    }
}
