//! **AB1 — Threshold-sensitivity ablation**: scale every catalog threshold
//! by a common factor and measure clean false positives vs attack detection
//! — the operating curve the default thresholds sit on.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin ablation_thresholds`

use adassure_attacks::campaign::AttackSpec;
use adassure_attacks::Window;
use adassure_bench::{attacks_for, catalog_config_for, run_attacked, run_clean};
use adassure_control::ControllerKind;
use adassure_core::catalog;
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).expect("library scenario");
    let controller = ControllerKind::PurePursuit;
    let base = catalog_config_for(&scenario);
    let attacks = attacks_for(&scenario);
    let seeds = [1u64, 2, 3];

    println!(
        "AB1: catalog-wide threshold scaling (scenario `{}`, {} stack)\n",
        scenario.kind, controller
    );
    println!(
        "{:>8} {:>18} {:>18}",
        "scale", "clean FP runs", "attacks detected"
    );

    for scale in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0] {
        let cat: Vec<_> = catalog::build(&base)
            .iter()
            .map(|a| {
                // A12's threshold is a route fraction, not an error
                // magnitude — scaling it would make the goal unreachable.
                if a.temporal == adassure_core::Temporal::Eventually {
                    a.clone()
                } else {
                    a.with_scaled_threshold(scale)
                }
            })
            .collect();

        let mut clean_fp = 0usize;
        for &seed in &seeds {
            let (_, report) = run_clean(&scenario, controller, seed, &cat).expect("clean");
            clean_fp += usize::from(!report.is_clean());
        }

        let mut detected = 0usize;
        let mut total = 0usize;
        for attack in &attacks {
            let spec = AttackSpec::new(attack.kind, Window::from_start(scenario.attack_start));
            for &seed in &seeds {
                total += 1;
                let (_, report) =
                    run_attacked(&scenario, controller, &spec, seed, &cat).expect("attacked");
                detected +=
                    usize::from(report.detection_latency(spec.window.start).is_some());
            }
        }
        println!(
            "{:>7}x {:>15}/{:<2} {:>15}/{:<2}",
            scale,
            clean_fp,
            seeds.len(),
            detected,
            total
        );
    }
    println!("\n(the expected operating curve: tightening below 1x buys little extra");
    println!(" detection but floods the monitor with false positives; loosening");
    println!(" beyond ~2x starts losing the subtler attack classes.)");
}
