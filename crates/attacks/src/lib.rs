//! Sensor-channel attack and fault injection for ADAssure campaigns.
//!
//! The original ADAssure evaluation subjected a real AV platform to
//! cyber-attacks on its sensor channels; this crate substitutes that rig
//! with injectors that mutate [`adassure_sim::sensor::SensorFrame`]s between
//! the (simulated) physical sensors and the control stack — the same place
//! a network-level spoofing attack lands.
//!
//! * [`AttackKind`] — the attack taxonomy (GNSS bias / drift / jump / noise
//!   / freeze / dropout / delay, wheel-speed scaling / freeze, IMU yaw bias,
//!   compass bias);
//! * [`Window`] — when the attack is active;
//! * [`AttackInjector`] — a stateful [`adassure_sim::engine::SensorTap`]
//!   applying one attack;
//! * [`ChannelFaultInjector`] — telemetry-link faults (dropout, stale
//!   repeat, jitter, NaN bursts, duplicates) on the *monitor's* input
//!   stream, independent of any vehicle attack;
//! * [`campaign`] — the standard attack catalog and spec types used by the
//!   experiment harnesses.
//!
//! # Example
//!
//! ```
//! use adassure_attacks::{AttackInjector, AttackKind, Window};
//! use adassure_sim::geometry::Vec2;
//!
//! let attack = AttackKind::GnssBias { offset: Vec2::new(3.0, 0.0) };
//! let injector = AttackInjector::new(attack, Window::from_start(5.0), 42);
//! assert_eq!(injector.kind().channel(), adassure_attacks::Channel::Gnss);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
mod fault;
mod injector;
mod kind;
mod schedule;
mod timeline;

pub use fault::{
    ChannelFaultInjector, Delivery, FaultChannelState, FaultInjectorState, FaultKind, FaultSpec,
};
pub use injector::{AttackInjector, InjectorState};
pub use kind::{AttackKind, Channel};
pub use schedule::Window;
pub use timeline::{AttackTimeline, MultiInjector};
