//! `trace-import` — convert CSV trace corpora to the `.adt` columnar store.
//!
//! CSV is the import frontend for externally recorded runs; the batch
//! checker consumes `.adt`. This tool bridges the two:
//!
//! ```text
//! trace-import [--verify] [--out DIR] FILE.csv [FILE.csv ...]
//! ```
//!
//! Each `FILE.csv` becomes `FILE.adt` next to it (or under `--out DIR`).
//! `--verify` re-decodes every written document and checks it reproduces
//! the CSV-parsed trace bit-for-bit before reporting success.
//!
//! Exit status is non-zero if any input fails; remaining inputs are still
//! processed so one corrupt file doesn't abort a corpus conversion.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use adassure_trace::{csv, ColumnarTrace};

fn main() -> ExitCode {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut verify = false;

    let mut argv = std::env::args_os().skip(1);
    while let Some(arg) = argv.next() {
        match arg.to_str() {
            Some("--help" | "-h") => {
                println!("usage: trace-import [--verify] [--out DIR] FILE.csv [FILE.csv ...]");
                println!();
                println!("Converts CSV traces to the .adt columnar binary store.");
                println!("  --out DIR   write .adt files into DIR instead of alongside inputs");
                println!("  --verify    re-decode each output and compare against the CSV parse");
                return ExitCode::SUCCESS;
            }
            Some("--verify") => verify = true,
            Some("--out") => match argv.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("trace-import: --out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            Some(flag) if flag.starts_with('-') => {
                eprintln!("trace-import: unknown flag `{flag}` (see --help)");
                return ExitCode::FAILURE;
            }
            _ => inputs.push(PathBuf::from(arg)),
        }
    }
    if inputs.is_empty() {
        eprintln!("trace-import: no input files (see --help)");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for input in &inputs {
        match convert(input, out_dir.as_deref(), verify) {
            Ok(output) => println!("{} -> {}", input.display(), output.display()),
            Err(message) => {
                eprintln!("trace-import: {}: {message}", input.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("trace-import: {failures} of {} inputs failed", inputs.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Converts one CSV file, returning the `.adt` path it wrote.
fn convert(input: &Path, out_dir: Option<&Path>, verify: bool) -> Result<PathBuf, String> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("read failed: {e}"))?;
    let trace = csv::from_csv(&text).map_err(|e| e.to_string())?;
    let columnar = ColumnarTrace::from_trace(&trace);

    let mut output = match out_dir {
        Some(dir) => dir.join(input.file_name().ok_or("input has no file name")?),
        None => input.to_path_buf(),
    };
    output.set_extension("adt");
    columnar.save(&output).map_err(|e| e.to_string())?;

    if verify {
        let decoded = ColumnarTrace::load(&output).map_err(|e| e.to_string())?;
        if decoded != columnar || decoded.to_trace() != trace {
            return Err(format!(
                "verification failed: {} does not round-trip the CSV parse",
                output.display()
            ));
        }
    }
    Ok(output)
}
