//! Complementary-filter state estimator.
//!
//! Dead-reckons from wheel speed + IMU yaw rate every cycle and blends in
//! GNSS position fixes and compass headings at configurable gains. This is
//! the stack's attack surface: it has no notion of "plausible" — any
//! consistency checking is exactly what the ADAssure assertions add on top.

use serde::{Deserialize, Serialize};

use adassure_sim::geometry::{angle_diff, wrap_angle, Vec2};
use adassure_sim::sensor::SensorFrame;

use crate::Estimate;

/// Estimator gains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Fraction of the GNSS innovation applied per fix (0 = ignore GNSS,
    /// 1 = snap to every fix).
    pub gnss_gain: f64,
    /// Fraction of the compass innovation applied per cycle.
    pub compass_gain: f64,
    /// Low-pass time constant for wheel speed (s); zero passes speed
    /// through unfiltered.
    pub speed_tau: f64,
}

impl EstimatorConfig {
    /// Defaults tuned for the 100 Hz loop / 10 Hz GNSS of the workspace.
    pub fn standard() -> Self {
        EstimatorConfig {
            gnss_gain: 0.25,
            compass_gain: 0.05,
            speed_tau: 0.05,
        }
    }
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig::standard()
    }
}

/// The complementary-filter estimator.
///
/// # Example
///
/// ```
/// use adassure_control::estimator::{Estimator, EstimatorConfig};
/// use adassure_sim::sensor::SensorFrame;
/// use adassure_sim::geometry::Vec2;
///
/// let mut est = Estimator::new(EstimatorConfig::standard());
/// let frame = SensorFrame {
///     time: 0.0,
///     gnss: Some(Vec2::new(5.0, 1.0)),
///     wheel_speed: 3.0,
///     imu_yaw_rate: 0.0,
///     imu_accel: 0.0,
///     compass: 0.0,
/// };
/// let e = est.update(&frame, 0.01);
/// assert_eq!(e.position, Vec2::new(5.0, 1.0)); // first fix initialises
/// ```
#[derive(Debug, Clone)]
pub struct Estimator {
    config: EstimatorConfig,
    position: Vec2,
    heading: f64,
    speed: f64,
    initialized: bool,
    last_innovation: f64,
}

impl Estimator {
    /// Creates an estimator awaiting its first GNSS fix.
    pub fn new(config: EstimatorConfig) -> Self {
        Estimator {
            config,
            position: Vec2::ZERO,
            heading: 0.0,
            speed: 0.0,
            initialized: false,
            last_innovation: 0.0,
        }
    }

    /// Whether the estimator has received its first GNSS fix.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Magnitude of the most recent GNSS innovation (m): the gap between
    /// the fix and the dead-reckoned position at fix time. This is the
    /// signal ADAssure assertion A11 monitors.
    pub fn last_innovation(&self) -> f64 {
        self.last_innovation
    }

    /// Ingests one sensor frame and returns the updated estimate.
    pub fn update(&mut self, frame: &SensorFrame, dt: f64) -> Estimate {
        if !self.initialized {
            if let Some(fix) = frame.gnss {
                self.position = fix;
                self.heading = frame.compass;
                self.speed = frame.wheel_speed;
                self.initialized = true;
            } else {
                // Hold at origin until the first fix; report what we can.
                self.heading = frame.compass;
                self.speed = frame.wheel_speed;
            }
            return self.estimate(frame);
        }

        // Predict: dead reckoning with wheel speed and IMU yaw rate.
        let alpha = if self.config.speed_tau > 0.0 {
            1.0 - (-dt / self.config.speed_tau).exp()
        } else {
            1.0
        };
        self.speed += alpha * (frame.wheel_speed - self.speed);
        self.heading = wrap_angle(self.heading + frame.imu_yaw_rate * dt);
        self.position += Vec2::from_angle(self.heading) * (self.speed * dt);

        // Correct: blend the compass every cycle and GNSS on fix cycles.
        self.heading = wrap_angle(
            self.heading + self.config.compass_gain * angle_diff(frame.compass, self.heading),
        );
        if let Some(fix) = frame.gnss {
            let innovation = fix - self.position;
            self.last_innovation = innovation.norm();
            self.position += innovation * self.config.gnss_gain;
        }
        self.estimate(frame)
    }

    fn estimate(&self, frame: &SensorFrame) -> Estimate {
        Estimate {
            position: self.position,
            heading: self.heading,
            speed: self.speed,
            yaw_rate: frame.imu_yaw_rate,
        }
    }

    /// Captures the filter's mutable state (the config is not included —
    /// restore pairs a snapshot with an identically-configured filter).
    pub fn state(&self) -> EstimatorState {
        EstimatorState {
            position: self.position,
            heading: self.heading,
            speed: self.speed,
            initialized: self.initialized,
            last_innovation: self.last_innovation,
        }
    }

    /// Reinstates a state captured with [`Estimator::state`].
    pub fn restore(&mut self, s: &EstimatorState) {
        self.position = s.position;
        self.heading = s.heading;
        self.speed = s.speed;
        self.initialized = s.initialized;
        self.last_innovation = s.last_innovation;
    }
}

/// Plain-data snapshot of an [`Estimator`]'s mutable state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorState {
    /// Estimated position (m).
    pub position: Vec2,
    /// Estimated heading (rad).
    pub heading: f64,
    /// Estimated speed (m/s).
    pub speed: f64,
    /// Whether the first GNSS fix has been ingested.
    pub initialized: bool,
    /// Magnitude of the most recent GNSS innovation (m).
    pub last_innovation: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t: f64, gnss: Option<Vec2>, speed: f64, yaw: f64, compass: f64) -> SensorFrame {
        SensorFrame {
            time: t,
            gnss,
            wheel_speed: speed,
            imu_yaw_rate: yaw,
            imu_accel: 0.0,
            compass,
        }
    }

    #[test]
    fn first_fix_initialises_pose() {
        let mut est = Estimator::new(EstimatorConfig::standard());
        assert!(!est.is_initialized());
        est.update(&frame(0.0, None, 2.0, 0.0, 0.5), 0.01);
        assert!(!est.is_initialized());
        let e = est.update(&frame(0.01, Some(Vec2::new(3.0, 4.0)), 2.0, 0.0, 0.5), 0.01);
        assert!(est.is_initialized());
        assert_eq!(e.position, Vec2::new(3.0, 4.0));
        assert!((e.heading - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dead_reckoning_tracks_straight_motion() {
        let mut config = EstimatorConfig::standard();
        config.speed_tau = 0.0;
        let mut est = Estimator::new(config);
        est.update(&frame(0.0, Some(Vec2::ZERO), 10.0, 0.0, 0.0), 0.01);
        // 100 cycles at 10 m/s without further fixes → ~10 m east.
        for i in 1..=100 {
            est.update(&frame(f64::from(i) * 0.01, None, 10.0, 0.0, 0.0), 0.01);
        }
        let e = est.update(&frame(1.01, None, 10.0, 0.0, 0.0), 0.01);
        assert!((e.position.x - 10.1).abs() < 0.2, "{:?}", e.position);
        assert!(e.position.y.abs() < 1e-9);
    }

    #[test]
    fn gnss_fixes_pull_position_toward_fix() {
        let mut est = Estimator::new(EstimatorConfig::standard());
        est.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, 0.0), 0.01);
        // Stationary vehicle, fix insists it is 4 m east. Repeated fixes
        // converge the estimate.
        for i in 1..=50 {
            est.update(
                &frame(f64::from(i) * 0.1, Some(Vec2::new(4.0, 0.0)), 0.0, 0.0, 0.0),
                0.01,
            );
        }
        let e = est.update(&frame(5.1, None, 0.0, 0.0, 0.0), 0.01);
        assert!((e.position.x - 4.0).abs() < 0.05, "{:?}", e.position);
    }

    #[test]
    fn innovation_reports_fix_gap() {
        let mut est = Estimator::new(EstimatorConfig::standard());
        est.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, 0.0), 0.01);
        est.update(&frame(0.1, Some(Vec2::new(3.0, 4.0)), 0.0, 0.0, 0.0), 0.01);
        assert!((est.last_innovation() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn compass_corrects_heading_drift() {
        let mut est = Estimator::new(EstimatorConfig::standard());
        est.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, 0.0), 0.01);
        // IMU says no rotation, compass insists 0.3 rad. Heading converges.
        for i in 1..=200 {
            est.update(&frame(f64::from(i) * 0.01, None, 0.0, 0.0, 0.3), 0.01);
        }
        let e = est.update(&frame(2.01, None, 0.0, 0.0, 0.3), 0.01);
        assert!((e.heading - 0.3).abs() < 0.01, "{}", e.heading);
    }

    #[test]
    fn speed_low_pass_smooths_steps() {
        let mut est = Estimator::new(EstimatorConfig::standard());
        est.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, 0.0), 0.01);
        let e = est.update(&frame(0.01, None, 10.0, 0.0, 0.0), 0.01);
        assert!(
            e.speed > 0.0 && e.speed < 10.0,
            "filtered step: {}",
            e.speed
        );
    }

    #[test]
    fn yaw_integration_turns_heading() {
        let mut config = EstimatorConfig::standard();
        config.compass_gain = 0.0;
        let mut est = Estimator::new(config);
        est.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, 0.0), 0.01);
        for i in 1..=100 {
            est.update(&frame(f64::from(i) * 0.01, None, 0.0, 0.5, 0.0), 0.01);
        }
        let e = est.update(&frame(1.01, None, 0.0, 0.5, 0.0), 0.01);
        assert!((e.heading - 0.505).abs() < 0.01, "{}", e.heading);
    }
}
