//! **F2 — Detection-latency distribution** across seeds, as a text
//! histogram per attack class (lane-change scenario, Stanley stack).
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin fig2_latency_distribution`

use adassure_control::ControllerKind;
use adassure_exp::{AttackSet, Campaign, Grid};
use adassure_scenarios::ScenarioKind;

fn main() {
    let controller = ControllerKind::Stanley;
    let seeds: Vec<u64> = (1..=10).collect();
    let grid = Grid::new()
        .scenarios([ScenarioKind::LaneChange])
        .controllers([controller])
        .attacks(AttackSet::Standard)
        .seeds(seeds.iter().copied());
    let report = Campaign::new("f2_latency_distribution", grid)
        .run()
        .expect("campaign");

    // Log-ish latency buckets (s).
    let edges = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 15.0, f64::INFINITY];
    let labels = ["<0.1", "<0.25", "<0.5", "<1", "<2", "<5", "<15", ">=15"];

    println!(
        "F2: detection-latency histogram over {} seeds (scenario `lane_change`, {} stack)\n",
        seeds.len(),
        controller
    );
    print!("{:<20}", "attack");
    for l in labels {
        print!("{l:>7}");
    }
    println!("{:>7}", "miss");

    for attack in AttackSet::Standard.specs(0.0) {
        let runs = report.select(|r| r.attack.as_deref() == Some(attack.name()));
        let mut buckets = vec![0usize; edges.len()];
        let mut miss = 0usize;
        for run in &runs {
            match run.detection_latency {
                Some(latency) => {
                    let idx = edges.iter().position(|&e| latency < e).expect("inf edge");
                    buckets[idx] += 1;
                }
                None => miss += 1,
            }
        }
        print!("{:<20}", attack.name());
        for b in &buckets {
            print!("{:>7}", if *b == 0 { ".".into() } else { b.to_string() });
        }
        println!(
            "{:>7}",
            if miss == 0 {
                ".".into()
            } else {
                miss.to_string()
            }
        );
    }
    println!("\n(cross-consistency detections cluster under 0.5 s; the stealthy");
    println!(" drift/wheel-freeze tail lands in the >=5 s buckets or misses.)");

    let path = report.write_json("results").expect("write results json");
    eprintln!("wrote {}", path.display());
}
