//! An inline, allocation-free string label.
//!
//! Events are emitted from the checker's hot path, so they cannot carry
//! heap-allocated `String`s. Assertion ids in this workspace are short
//! ("A1"–"A16", mined ids like "M3"), so a fixed 23-byte inline buffer
//! holds them losslessly; anything longer is truncated at a UTF-8 boundary
//! (labels are identifiers, not payloads).

use std::fmt;

/// A short, `Copy`, inline string (at most [`Label::CAPACITY`] bytes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label {
    len: u8,
    bytes: [u8; Label::CAPACITY],
}

impl Label {
    /// Maximum length in bytes; longer inputs are truncated.
    pub const CAPACITY: usize = 23;

    /// Builds a label from `s`, truncating to [`Label::CAPACITY`] bytes at
    /// a character boundary. Never allocates.
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(Self::CAPACITY);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0u8; Self::CAPACITY];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        Label {
            len: end as u8,
            bytes,
        }
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        // The buffer is only ever filled from a `&str` prefix cut at a
        // character boundary, so it stays valid UTF-8.
        std::str::from_utf8(&self.bytes[..usize::from(self.len)]).expect("label is UTF-8")
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_short_strings() {
        assert_eq!(Label::new("A13").as_str(), "A13");
        assert_eq!(Label::new("").as_str(), "");
        assert_eq!(Label::from("xtrack_err").to_string(), "xtrack_err");
    }

    #[test]
    fn truncates_at_capacity() {
        let long = "a".repeat(40);
        assert_eq!(Label::new(&long).as_str().len(), Label::CAPACITY);
    }

    #[test]
    fn truncates_on_char_boundary() {
        // 23 bytes would split the 2-byte 'é' at position 22..24.
        let s = "0123456789012345678901éx";
        let label = Label::new(s);
        assert_eq!(label.as_str(), "0123456789012345678901");
    }

    #[test]
    fn equality_and_ordering() {
        assert_eq!(Label::new("A1"), Label::new("A1"));
        assert_ne!(Label::new("A1"), Label::new("A2"));
        assert!(Label::new("A1") < Label::new("A2"));
    }
}
