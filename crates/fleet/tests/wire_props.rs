//! Property-based tests of the wire codec's framing invariants: a valid
//! multi-frame byte stream decodes to the same frames no matter how the
//! transport fragments it, and truncating it anywhere yields the intact
//! prefix and a clean need-more-bytes state — never an error.

use adassure_fleet::wire::{
    encode_ack, encode_close_stream, encode_get_metrics, encode_hello_session, encode_nack,
    encode_open_stream, encode_resume, encode_sample_batch, AckBody, Frame, FrameDecoder,
    NackReason, VERSION,
};
use adassure_fleet::{SampleBatch, StreamId};
use proptest::prelude::*;

const CHANNELS: [&str; 4] = ["xtrack", "speed", "gnss_x", "yaw"];

fn batch_strategy() -> impl Strategy<Value = SampleBatch> {
    (
        0u32..4,
        0u32..64,
        0u32..4,
        proptest::collection::vec((0u8..4, 1u32..1000, -1000i32..1000), 0..12),
    )
        .prop_map(|(shard, slot, gen, raw)| {
            let mut batch = SampleBatch::new(StreamId::from_raw(shard, slot, gen));
            let mut t = 0.0;
            for (channel, dt_millis, value) in raw {
                t += f64::from(dt_millis) / 1000.0;
                batch.push(t, CHANNELS[channel as usize], f64::from(value) / 10.0);
            }
            batch
        })
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    let nack_reasons = [
        NackReason::Saturated,
        NackReason::UnknownShard,
        NackReason::StaleGeneration,
        NackReason::UnknownSlot,
        NackReason::Superseded,
        NackReason::Malformed,
        NackReason::Unsupported,
        NackReason::ShuttingDown,
        NackReason::UnknownSession,
        NackReason::ResumeGap,
        NackReason::ConnectionLimit,
    ];
    prop_oneof![
        (0u64..1_000_000).prop_map(|session| Frame::Hello {
            version: VERSION,
            session,
        }),
        (1u64..1_000_000).prop_map(|seq| Frame::OpenStream { seq, flags: 0 }),
        (1u64..1_000_000, batch_strategy())
            .prop_map(|(seq, batch)| Frame::SampleBatch { seq, batch }),
        (1u64..1_000_000, 0u32..4, 0u32..64, 0u32..4).prop_map(|(seq, shard, slot, gen)| {
            Frame::CloseStream {
                seq,
                stream: StreamId::from_raw(shard, slot, gen),
            }
        }),
        (1u64..1_000_000).prop_map(|seq| Frame::GetMetrics { seq }),
        (1u64..1_000_000, 0u64..1_000_000).prop_map(|(session, last_acked)| Frame::Resume {
            session,
            last_acked,
        }),
        (0u64..1_000_000, 0u64..1_000_000).prop_map(|(seq, next_seq)| Frame::Ack {
            seq,
            body: AckBody::Resumed { next_seq },
        }),
        (0u64..1_000_000, 0u64..1_000_000).prop_map(|(seq, durable_seq)| Frame::Ack {
            seq,
            body: AckBody::BatchApplied { durable_seq },
        }),
        (0u64..1_000_000, proptest::collection::vec(0u8..128, 0..40)).prop_map(
            |(seq, report_json)| Frame::Ack {
                seq,
                body: AckBody::StreamClosed { report_json },
            }
        ),
        (0u64..1_000_000, 0usize..11, 0u32..5000).prop_map(move |(seq, reason, retry)| {
            Frame::Nack {
                seq,
                reason: nack_reasons[reason],
                retry_after_us: retry,
            }
        }),
    ]
}

fn encode_frame(out: &mut Vec<u8>, frame: &Frame) {
    match frame {
        Frame::Hello { session, .. } => encode_hello_session(out, *session),
        Frame::OpenStream { seq, .. } => encode_open_stream(out, *seq),
        Frame::SampleBatch { seq, batch } => {
            encode_sample_batch(out, *seq, batch).expect("generated channels encode");
        }
        Frame::CloseStream { seq, stream } => encode_close_stream(out, *seq, *stream),
        Frame::GetMetrics { seq } => encode_get_metrics(out, *seq),
        Frame::Resume {
            session,
            last_acked,
        } => encode_resume(out, *session, *last_acked),
        Frame::Ack { seq, body } => encode_ack(out, *seq, body),
        Frame::Nack {
            seq,
            reason,
            retry_after_us,
        } => encode_nack(out, *seq, *reason, *retry_after_us),
    }
}

fn drain(decoder: &mut FrameDecoder) -> Vec<Frame> {
    let mut frames = Vec::new();
    while let Some(frame) = decoder.next_frame().expect("valid stream decodes") {
        frames.push(frame);
    }
    frames
}

proptest! {
    #[test]
    fn any_fragmentation_reassembles_the_same_frames(
        frames in proptest::collection::vec(frame_strategy(), 1..20),
        chunks in proptest::collection::vec(1usize..64, 1..40),
    ) {
        let mut bytes = Vec::new();
        for frame in &frames {
            encode_frame(&mut bytes, frame);
        }
        let mut decoder = FrameDecoder::new(1 << 20);
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut next_chunk = 0;
        while offset < bytes.len() {
            let len = chunks[next_chunk % chunks.len()].min(bytes.len() - offset);
            next_chunk += 1;
            decoder.feed(&bytes[offset..offset + len]);
            offset += len;
            decoded.extend(drain(&mut decoder));
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(decoder.pending(), 0, "no residual bytes after full stream");
    }

    #[test]
    fn any_truncation_point_is_need_more_bytes(
        frames in proptest::collection::vec(frame_strategy(), 1..8),
        cut_roll in 0u32..1_000_000,
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = Vec::new();
        for frame in &frames {
            encode_frame(&mut bytes, frame);
            boundaries.push(bytes.len());
        }
        let cut = 1 + (cut_roll as usize) % bytes.len().max(1);
        let mut decoder = FrameDecoder::new(1 << 20);
        decoder.feed(&bytes[..cut]);
        let decoded = drain(&mut decoder);
        let whole = boundaries.iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(decoded.len(), whole, "exactly the complete frames decode");
        prop_assert_eq!(&decoded[..], &frames[..whole]);
        // Feeding the rest completes the stream without loss.
        decoder.feed(&bytes[cut..]);
        let rest = drain(&mut decoder);
        prop_assert_eq!(&rest[..], &frames[whole..]);
        prop_assert_eq!(decoder.pending(), 0);
    }
}
