//! Pins the compiled evaluation plan's zero-allocation guarantee: once
//! every catalog signal has been seen (all slots interned), the
//! steady-state `begin_cycle` / `update` / `end_cycle` path must not
//! touch the allocator at all.
//!
//! Lives in its own integration-test binary because it installs a
//! process-wide counting `#[global_allocator]` and the counter is only
//! meaningful while a single test runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adassure_core::catalog::{self, CatalogConfig};
use adassure_core::OnlineChecker;
use adassure_obs::{JsonlWriter, ObsConfig};
use adassure_trace::SignalId;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_cycles_do_not_allocate() {
    let config = CatalogConfig::default();
    let cat = catalog::build(&config);
    let signals: Vec<SignalId> = catalog::signals(&cat);
    assert!(!signals.is_empty());

    let mut checker = OnlineChecker::new(cat.iter().cloned());

    // Warm-up past the behavioural grace period so every assertion is
    // actually evaluated, with every catalog signal updated each cycle so
    // all slots are interned. Value 0.0 keeps the whole catalog healthy
    // (a non-zero hold value would trip residual-style assertions and the
    // resulting violation push would — legitimately — allocate).
    for i in 0..50u32 {
        let t = 12.0 + f64::from(i) * 0.01;
        checker.begin_cycle(t).unwrap();
        for id in &signals {
            checker.update(id.clone(), 0.0);
        }
        checker.end_cycle();
    }
    assert_eq!(
        checker.violations().len(),
        0,
        "warm-up must stay violation-free or the steady state is not representative"
    );

    // Steady state: same traffic, counted.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 50..1050u32 {
        let t = 12.0 + f64::from(i) * 0.01;
        checker.begin_cycle(t).unwrap();
        for id in &signals {
            checker.update(id.clone(), 0.0);
        }
        checker.end_cycle();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state begin_cycle/update/end_cycle allocated"
    );
    assert!(checker.violations().is_empty());
}

#[test]
fn fault_path_does_not_allocate() {
    // The telemetry-health layer (poison flags, staleness scan, streak
    // counters, Inconclusive verdicts) must preserve the zero-allocation
    // guarantee: degraded cycles are exactly when the monitor must not
    // misbehave.
    let config = CatalogConfig::default();
    let cat = catalog::build(&config);
    let signals: Vec<SignalId> = catalog::signals(&cat);

    let health = adassure_core::HealthConfig {
        stale_after: 0.05,
        quarantine_after: 10,
        recover_after: 5,
    };
    let mut checker = OnlineChecker::with_health(cat.iter().cloned(), health);

    for i in 0..50u32 {
        let t = 12.0 + f64::from(i) * 0.01;
        checker.begin_cycle(t).unwrap();
        for id in &signals {
            checker.update(id.clone(), 0.0);
        }
        checker.end_cycle();
    }
    assert_eq!(checker.violations().len(), 0);

    // Counted phase: ten-cycle full dropouts (0.1 s ≫ the 0.05 s horizon,
    // exercising staleness degradation and the hysteretic recovery in the
    // twenty live cycles that follow) interleaved with NaN poisoning of
    // half the catalog every third live cycle.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 50..1050u32 {
        let t = 12.0 + f64::from(i) * 0.01;
        checker.begin_cycle(t).unwrap();
        if (i / 10) % 3 != 2 {
            for (k, id) in signals.iter().enumerate() {
                let value = if i % 3 == 0 && k % 2 == 0 {
                    f64::NAN
                } else {
                    0.0
                };
                checker.update(id.clone(), value);
            }
        }
        checker.end_cycle();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(after - before, 0, "fault-path cycles allocated");
    assert_eq!(
        checker.violations().len(),
        0,
        "faults must yield Inconclusive verdicts, not violations"
    );
    assert!(checker.inconclusive_cycles() > 0, "faults were exercised");
}

#[test]
fn observed_cycles_do_not_allocate() {
    // The observability layer — verdict counters, transition grids, the
    // per-cycle timing sample, event construction, filtering, and JSONL
    // serialization into the writer's reusable buffer — must preserve the
    // zero-allocation steady state even at timing stride 1 with every
    // event kind enabled. Faults are injected so flips and health
    // transitions (the allocation-prone paths) actually fire while
    // counting.
    let config = CatalogConfig::default();
    let cat = catalog::build(&config);
    let signals: Vec<SignalId> = catalog::signals(&cat);

    let health = adassure_core::HealthConfig {
        stale_after: 0.05,
        quarantine_after: 10,
        recover_after: 5,
    };
    let mut obs = ObsConfig::enabled();
    obs.timing_stride = 1;
    let mut checker = OnlineChecker::with_observability(
        cat.iter().cloned(),
        health,
        &obs,
        Box::new(JsonlWriter::new(std::io::sink())),
    );

    for i in 0..50u32 {
        let t = 12.0 + f64::from(i) * 0.01;
        checker.begin_cycle(t).unwrap();
        for id in &signals {
            checker.update(id.clone(), 0.0);
        }
        checker.end_cycle();
    }
    assert_eq!(checker.violations().len(), 0);

    // Counted phase: the same fault schedule as `fault_path_does_not_
    // allocate`, so verdict flips and health transitions stream through
    // the sink while the allocator is watched.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 50..1050u32 {
        let t = 12.0 + f64::from(i) * 0.01;
        checker.begin_cycle(t).unwrap();
        if (i / 10) % 3 != 2 {
            for (k, id) in signals.iter().enumerate() {
                let value = if i % 3 == 0 && k % 2 == 0 {
                    f64::NAN
                } else {
                    0.0
                };
                checker.update(id.clone(), value);
            }
        }
        checker.end_cycle();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(after - before, 0, "observed cycles allocated");
    assert!(
        checker.events_emitted() > 0,
        "the emission path was not exercised"
    );
    let metrics = checker.metrics();
    assert!(
        metrics.eval_cycle_ns.count >= 1000,
        "stride-1 timing sampled"
    );
    assert!(
        !metrics.health_transitions.is_empty(),
        "health transitions were exercised"
    );
}
