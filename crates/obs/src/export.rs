//! Exporters: Prometheus text exposition format and a pretty-JSON snapshot.
//!
//! These run off the hot path (end of run / scrape time), so they are free
//! to allocate. The Prometheus output follows the text exposition format:
//! `# HELP`/`# TYPE` headers, cumulative `_bucket{le=...}` counters ending
//! in `+Inf`, and `_sum`/`_count` for each histogram.

use crate::hist::Histogram;
use crate::metrics::{MetricsSnapshot, Transition};
use std::fmt::Write as _;

/// Renders `snap` in Prometheus text exposition format.
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);

    push_counter(
        &mut out,
        "adassure_cycles_total",
        "Monitor cycles evaluated",
        snap.cycles,
    );

    counter_header(
        &mut out,
        "adassure_assertion_verdicts_total",
        "Cycles per assertion and verdict",
    );
    for a in &snap.assertions {
        for (verdict, count) in [
            ("unknown", a.verdicts.unknown),
            ("pass", a.verdicts.pass),
            ("inconclusive", a.verdicts.inconclusive),
            ("violated", a.verdicts.violated),
        ] {
            if count > 0 {
                let _ = writeln!(
                    out,
                    "adassure_assertion_verdicts_total{{assertion=\"{}\",verdict=\"{verdict}\"}} {count}",
                    a.id
                );
            }
        }
    }

    counter_header(
        &mut out,
        "adassure_assertion_flips_total",
        "Verdict changes between consecutive cycles",
    );
    for a in &snap.assertions {
        if a.flips > 0 {
            let _ = writeln!(
                out,
                "adassure_assertion_flips_total{{assertion=\"{}\"}} {}",
                a.id, a.flips
            );
        }
    }

    counter_header(
        &mut out,
        "adassure_assertion_episodes_total",
        "Distinct violation episodes per assertion",
    );
    for a in &snap.assertions {
        if a.episodes > 0 {
            let _ = writeln!(
                out,
                "adassure_assertion_episodes_total{{assertion=\"{}\"}} {}",
                a.id, a.episodes
            );
        }
    }

    transition_block(
        &mut out,
        "adassure_health_transitions_total",
        "Telemetry-health state transitions",
        &snap.health_transitions,
    );
    transition_block(
        &mut out,
        "adassure_guard_transitions_total",
        "Guardian mode transitions",
        &snap.guard_transitions,
    );

    push_counter(
        &mut out,
        "adassure_events_emitted_total",
        "Events that passed the filter",
        snap.events_emitted,
    );

    histogram_block(
        &mut out,
        "adassure_eval_cycle_ns",
        "Wall-clock cycle evaluation time, nanoseconds (sampled)",
        &snap.eval_cycle_ns,
    );
    histogram_block(
        &mut out,
        "adassure_detection_latency_seconds",
        "Detection latency in simulation seconds",
        &snap.detection_latency_s,
    );

    out
}

/// Renders `snap` as pretty-printed JSON (the `obs_dump --json` format).
pub fn json(snap: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(snap).expect("metrics snapshot serializes")
}

fn counter_header(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
}

/// Appends one unlabeled counter with its `HELP`/`TYPE` header.
///
/// Building block for services that expose their own counters next to the
/// snapshot series (the monitor server's ingest counters, for instance).
pub fn push_counter(out: &mut String, name: &str, help: &str, value: u64) {
    counter_header(out, name, help);
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one unlabeled gauge with its `HELP`/`TYPE` header.
pub fn push_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends a histogram as a Prometheus summary — `quantile`-labeled p50
/// and p99 samples plus `_sum`/`_count` — the compact form for latency
/// series where full bucket curves would drown the page.
pub fn push_quantiles(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} summary");
    for (q, v) in [("0.5", h.p50()), ("0.99", h.p99())] {
        if let Some(v) = v {
            let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
        }
    }
    if h.sum.is_finite() {
        let _ = writeln!(out, "{name}_sum {}", h.sum);
    } else {
        let _ = writeln!(out, "{name}_sum 0");
    }
    let _ = writeln!(out, "{name}_count {}", h.count);
}

fn transition_block(out: &mut String, name: &str, help: &str, transitions: &[Transition]) {
    counter_header(out, name, help);
    for t in transitions {
        let _ = writeln!(
            out,
            "{name}{{from=\"{}\",to=\"{}\"}} {}",
            t.from, t.to, t.count
        );
    }
}

fn histogram_block(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    // Prometheus buckets are cumulative; underflow folds into the first
    // bucket (every bound is an upper bound), overflow into +Inf.
    let mut cumulative = h.underflow;
    for (i, &count) in h.buckets.iter().enumerate() {
        cumulative += count;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            h.upper_bound(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    if h.sum.is_finite() {
        let _ = writeln!(out, "{name}_sum {}", h.sum);
    } else {
        let _ = writeln!(out, "{name}_sum 0");
    }
    let _ = writeln!(out, "{name}_count {}", h.count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::AssertionStats;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::empty();
        snap.cycles = 100;
        let mut a = AssertionStats::new("A1");
        a.verdicts.pass = 90;
        a.verdicts.violated = 10;
        a.flips = 2;
        a.episodes = 1;
        snap.assertions.push(a);
        snap.guard_transitions.push(Transition {
            from: "nominal".into(),
            to: "degraded".into(),
            count: 1,
        });
        snap.eval_cycle_ns.record(120.0);
        snap.eval_cycle_ns.record(140.0);
        snap.detection_latency_s.record(0.3);
        snap
    }

    #[test]
    fn prometheus_renders_counters_and_labels() {
        let text = prometheus(&sample_snapshot());
        assert!(text.contains("adassure_cycles_total 100"));
        assert!(text
            .contains("adassure_assertion_verdicts_total{assertion=\"A1\",verdict=\"pass\"} 90"));
        assert!(text.contains("adassure_assertion_flips_total{assertion=\"A1\"} 2"));
        assert!(
            text.contains("adassure_guard_transitions_total{from=\"nominal\",to=\"degraded\"} 1")
        );
        // Zero-valued per-assertion series are suppressed.
        assert!(!text.contains("verdict=\"unknown\""));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_and_ends_at_inf() {
        let text = prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE adassure_eval_cycle_ns histogram"));
        assert!(text.contains("adassure_eval_cycle_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("adassure_eval_cycle_ns_count 2"));
        assert!(text.contains("adassure_eval_cycle_ns_sum 260"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("adassure_eval_cycle_ns_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket line: {line}");
            last = v;
        }
    }

    #[test]
    fn push_helpers_render_well_formed_series() {
        let mut out = String::new();
        push_counter(&mut out, "x_total", "things", 7);
        push_gauge(&mut out, "x_live", "live things", 2.5);
        let mut h = Histogram::nanos();
        for v in [100.0, 200.0, 400.0] {
            h.record(v);
        }
        push_quantiles(&mut out, "x_latency_ns", "latency", &h);
        assert!(out.contains("# TYPE x_total counter"));
        assert!(out.contains("x_total 7"));
        assert!(out.contains("# TYPE x_live gauge"));
        assert!(out.contains("x_live 2.5"));
        assert!(out.contains("# TYPE x_latency_ns summary"));
        assert!(out.contains("x_latency_ns{quantile=\"0.5\"}"));
        assert!(out.contains("x_latency_ns{quantile=\"0.99\"}"));
        assert!(out.contains("x_latency_ns_count 3"));

        // An empty histogram still renders sum/count, no quantiles.
        let mut out = String::new();
        push_quantiles(&mut out, "y_ns", "empty", &Histogram::nanos());
        assert!(out.contains("y_ns_count 0"));
        assert!(!out.contains("quantile"));
    }

    #[test]
    fn json_snapshot_parses_back() {
        let snap = sample_snapshot();
        let text = json(&snap);
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
