use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Series, SignalId, TraceError};

/// A multi-signal recording of one run: the unit the offline assertion
/// checker consumes.
///
/// Signals are created lazily on first [`Trace::record`]. Iteration order is
/// stable (sorted by signal name) so reports and CSV exports are
/// reproducible.
///
/// # Example
///
/// ```
/// use adassure_trace::Trace;
///
/// let mut trace = Trace::new();
/// trace.record("speed", 0.0, 4.0);
/// trace.record("speed", 0.1, 4.2);
/// trace.record("steer_cmd", 0.0, 0.01);
/// assert_eq!(trace.signal_count(), 2);
/// assert_eq!(trace.series_by_name("speed").unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    series: BTreeMap<SignalId, Series>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records one sample of `signal` at time `time`.
    ///
    /// Non-finite samples and non-monotonic timestamps are silently dropped;
    /// use [`Trace::try_record`] when the caller wants to observe those
    /// conditions. Dropping (rather than panicking) is deliberate: a trace
    /// recorder embedded in a control loop must never take the loop down.
    pub fn record(&mut self, signal: impl Into<SignalId>, time: f64, value: f64) {
        let _ = self.try_record(signal, time, value);
    }

    /// Records one sample, reporting invariant violations.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NonMonotonicTime`] or
    /// [`TraceError::NonFiniteSample`] as produced by [`Series::push`].
    pub fn try_record(
        &mut self,
        signal: impl Into<SignalId>,
        time: f64,
        value: f64,
    ) -> Result<(), TraceError> {
        let id = signal.into();
        self.series
            .entry(id.clone())
            .or_insert_with(|| Series::new(id))
            .push(time, value)
    }

    /// Number of distinct signals.
    pub fn signal_count(&self) -> usize {
        self.series.len()
    }

    /// Whether the trace holds no signals.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The series recorded for `signal`, if present.
    pub fn series(&self, signal: &SignalId) -> Option<&Series> {
        self.series.get(signal)
    }

    /// The series recorded for a signal name, if present.
    pub fn series_by_name(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// The series recorded for `signal`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownSignal`] if absent.
    pub fn require(&self, name: &str) -> Result<&Series, TraceError> {
        self.series_by_name(name)
            .ok_or_else(|| TraceError::UnknownSignal(name.to_owned()))
    }

    /// Inserts (or replaces) a whole series.
    pub fn insert_series(&mut self, series: Series) {
        self.series.insert(series.id().clone(), series);
    }

    /// Iterates over all series, sorted by signal name.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    /// All signal ids, sorted by name.
    pub fn signals(&self) -> impl Iterator<Item = &SignalId> {
        self.series.keys()
    }

    /// Overall time span `(start, end)` across all series, if any samples
    /// exist.
    pub fn span(&self) -> Option<(f64, f64)> {
        let mut acc: Option<(f64, f64)> = None;
        for s in self.series.values() {
            if let Some((a, b)) = s.span() {
                acc = Some(match acc {
                    None => (a, b),
                    Some((lo, hi)) => (lo.min(a), hi.max(b)),
                });
            }
        }
        acc
    }

    /// Duration of the trace (s); zero when empty.
    pub fn duration(&self) -> f64 {
        self.span().map_or(0.0, |(a, b)| b - a)
    }

    /// Whether all non-empty series share identical timestamp grids.
    ///
    /// Traces recorded by the simulation engine are aligned by construction;
    /// this check guards the aligned fast paths (CSV export, row views).
    pub fn is_aligned(&self) -> bool {
        let mut grids = self
            .series
            .values()
            .filter(|s| !s.is_empty())
            .map(|s| s.samples());
        let Some(reference) = grids.next() else {
            return true;
        };
        grids.all(|g| {
            g.len() == reference.len() && g.iter().zip(reference).all(|(a, b)| a.time == b.time)
        })
    }

    /// Restricts every series to `start <= t <= end`.
    pub fn slice_time(&self, start: f64, end: f64) -> Trace {
        Trace {
            series: self
                .series
                .iter()
                .map(|(id, s)| (id.clone(), s.slice_time(start, end)))
                .collect(),
        }
    }

    /// Total number of samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series.values().map(Series::len).sum()
    }
}

impl FromIterator<Series> for Trace {
    fn from_iter<I: IntoIterator<Item = Series>>(iter: I) -> Self {
        let mut trace = Trace::new();
        for s in iter {
            trace.insert_series(s);
        }
        trace
    }
}

impl Extend<Series> for Trace {
    fn extend<I: IntoIterator<Item = Series>>(&mut self, iter: I) {
        for s in iter {
            self.insert_series(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aligned_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..5 {
            let time = f64::from(i) * 0.1;
            t.record("a", time, f64::from(i));
            t.record("b", time, f64::from(i) * 2.0);
        }
        t
    }

    #[test]
    fn record_creates_signals_lazily() {
        let t = aligned_trace();
        assert_eq!(t.signal_count(), 2);
        assert_eq!(t.sample_count(), 10);
    }

    #[test]
    fn record_drops_bad_samples_silently() {
        let mut t = Trace::new();
        t.record("a", 0.0, 1.0);
        t.record("a", 0.0, 2.0); // duplicate time: dropped
        t.record("a", f64::NAN, 2.0); // non-finite: dropped
        assert_eq!(t.series_by_name("a").unwrap().len(), 1);
        assert!(t.try_record("a", 0.0, 9.0).is_err());
    }

    #[test]
    fn require_reports_unknown_signal() {
        let t = aligned_trace();
        assert!(t.require("a").is_ok());
        assert!(matches!(
            t.require("zzz"),
            Err(TraceError::UnknownSignal(name)) if name == "zzz"
        ));
    }

    #[test]
    fn span_and_duration_cover_all_series() {
        let mut t = aligned_trace();
        t.record("late", 1.0, 0.0);
        let (a, b) = t.span().unwrap();
        assert_eq!(a, 0.0);
        assert_eq!(b, 1.0);
        assert!((t.duration() - 1.0).abs() < 1e-12);
        assert_eq!(Trace::new().duration(), 0.0);
    }

    #[test]
    fn alignment_detection() {
        let mut t = aligned_trace();
        assert!(t.is_aligned());
        t.record("c", 0.05, 1.0);
        assert!(!t.is_aligned());
        assert!(Trace::new().is_aligned());
    }

    #[test]
    fn slice_time_restricts_all_series() {
        let t = aligned_trace();
        let sliced = t.slice_time(0.15, 0.35);
        assert_eq!(sliced.series_by_name("a").unwrap().len(), 2);
        assert_eq!(sliced.series_by_name("b").unwrap().len(), 2);
    }

    #[test]
    fn from_iterator_collects_series() {
        let s1 = Series::from_samples("x", [(0.0, 1.0)]).unwrap();
        let s2 = Series::from_samples("y", [(0.0, 2.0)]).unwrap();
        let t: Trace = [s1, s2].into_iter().collect();
        assert_eq!(t.signal_count(), 2);
    }

    #[test]
    fn signals_iterate_sorted() {
        let mut t = Trace::new();
        t.record("zeta", 0.0, 0.0);
        t.record("alpha", 0.0, 0.0);
        let names: Vec<_> = t.signals().map(SignalId::as_str).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}
