//! CSV import frontend (and export) for aligned traces.
//!
//! The simulation engine records every signal on the same fixed time grid,
//! so a trace maps naturally onto a flat table: one `time` column followed by
//! one column per signal (sorted by name). The format is deliberately plain
//! so traces can be plotted with any external tool.
//!
//! CSV is the *import* format: externally authored corpora enter through
//! [`from_csv`] (or the `trace-import` binary, which converts them to the
//! [`crate::columnar`] `.adt` store the batch checker consumes). The parser
//! tolerates Windows-authored files — CRLF line endings, lone `\r`
//! terminators and trailing whitespace — while still reporting genuinely
//! malformed rows with their line number.

use std::fmt::Write as _;

use crate::{Trace, TraceError};

/// Serialises an aligned trace to CSV.
///
/// The first column is `time`; the remaining columns are the signals in
/// sorted name order.
///
/// # Errors
///
/// Returns [`TraceError::Misaligned`] when the trace's series do not share a
/// single time grid (see [`Trace::is_aligned`]).
///
/// # Example
///
/// ```
/// use adassure_trace::{Trace, csv};
///
/// # fn main() -> Result<(), adassure_trace::TraceError> {
/// let mut t = Trace::new();
/// t.record("a", 0.0, 1.0);
/// t.record("b", 0.0, 2.0);
/// let text = csv::to_csv(&t)?;
/// assert!(text.starts_with("time,a,b\n"));
/// # Ok(())
/// # }
/// ```
pub fn to_csv(trace: &Trace) -> Result<String, TraceError> {
    if !trace.is_aligned() {
        let mut names = trace.signals();
        let left = names
            .next()
            .map(|s| s.as_str().to_owned())
            .unwrap_or_default();
        let right = names
            .next()
            .map(|s| s.as_str().to_owned())
            .unwrap_or_default();
        return Err(TraceError::Misaligned { left, right });
    }

    let mut out = String::new();
    out.push_str("time");
    for id in trace.signals() {
        out.push(',');
        out.push_str(id.as_str());
    }
    out.push('\n');

    let Some(reference) = trace.iter().find(|s| !s.is_empty()) else {
        return Ok(out);
    };
    let columns: Vec<_> = trace.iter().collect();
    for (row, sample) in reference.samples().iter().enumerate() {
        write!(out, "{}", sample.time).expect("write to String is infallible");
        for col in &columns {
            let value = col.samples().get(row).map_or(f64::NAN, |s| s.value);
            write!(out, ",{value}").expect("write to String is infallible");
        }
        out.push('\n');
    }
    Ok(out)
}

/// Parses a CSV document previously produced by [`to_csv`].
///
/// # Errors
///
/// Returns [`TraceError::ParseCsv`] for structural problems (missing header,
/// ragged rows, unparsable numbers) and [`TraceError::Malformed`] — with the
/// offending line number — when a row parses but violates a series
/// invariant (non-monotonic time, infinite value), instead of silently
/// producing a partial trace.
pub fn from_csv(text: &str) -> Result<Trace, TraceError> {
    let mut lines = logical_lines(text);
    let (_, header) = lines.next().ok_or(TraceError::ParseCsv {
        line: 1,
        message: "empty document".to_owned(),
    })?;
    let mut cols = header.split(',');
    match cols.next().map(str::trim) {
        Some("time") => {}
        other => {
            return Err(TraceError::ParseCsv {
                line: 1,
                message: format!("first column must be `time`, got {other:?}"),
            })
        }
    }
    let names: Vec<&str> = cols.map(str::trim).collect();

    let mut trace = Trace::new();
    for (line_no, line) in lines {
        let line = line.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let time: f64 = parse_field(fields.next(), line_no, "time")?;
        let mut consumed = 0usize;
        for (name, field) in names.iter().zip(&mut fields) {
            consumed += 1;
            let value: f64 = parse_field(Some(field), line_no, name)?;
            if value.is_nan() {
                continue; // NaN encodes "no sample in this column for this row".
            }
            trace
                .try_record(*name, time, value)
                .map_err(|err| TraceError::Malformed {
                    line: line_no,
                    message: err.to_string(),
                })?;
        }
        if consumed != names.len() || fields.next().is_some() {
            return Err(TraceError::ParseCsv {
                line: line_no,
                message: format!("expected {} value columns", names.len()),
            });
        }
    }
    Ok(trace)
}

fn parse_field(field: Option<&str>, line: usize, column: &str) -> Result<f64, TraceError> {
    let raw = field.ok_or_else(|| TraceError::ParseCsv {
        line,
        message: format!("missing column `{column}`"),
    })?;
    // Trim before the NaN sentinel check so `NaN ` / ` NaN` cells (padded
    // by spreadsheet exports) still encode "no sample".
    let trimmed = raw.trim();
    if trimmed == "NaN" {
        return Ok(f64::NAN);
    }
    trimmed.parse().map_err(|_| TraceError::ParseCsv {
        line,
        message: format!("invalid number `{raw}` in column `{column}`"),
    })
}

/// Splits `text` into `(1-based line number, content)` pairs, accepting
/// `\n`, `\r\n` and lone `\r` terminators so Windows- and classic-Mac-
/// authored documents keep accurate line numbers in errors.
fn logical_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut rest = text;
    let mut no = 0usize;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        no += 1;
        let bytes = rest.as_bytes();
        let end = bytes
            .iter()
            .position(|&b| b == b'\n' || b == b'\r')
            .unwrap_or(bytes.len());
        let line = &rest[..end];
        let skip = match bytes.get(end) {
            Some(b'\r') if bytes.get(end + 1) == Some(&b'\n') => end + 2,
            Some(_) => end + 1,
            None => end,
        };
        rest = &rest[skip..];
        Some((no, line))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..3 {
            let time = f64::from(i) * 0.5;
            t.record("beta", time, f64::from(i));
            t.record("alpha", time, -f64::from(i));
        }
        t
    }

    #[test]
    fn round_trip_preserves_trace() {
        let t = sample_trace();
        let text = to_csv(&t).unwrap();
        let back = from_csv(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn header_sorts_signals() {
        let text = to_csv(&sample_trace()).unwrap();
        assert!(text.starts_with("time,alpha,beta\n"));
    }

    #[test]
    fn misaligned_trace_is_rejected() {
        let mut t = sample_trace();
        t.record("gamma", 0.25, 1.0);
        assert!(matches!(to_csv(&t), Err(TraceError::Misaligned { .. })));
    }

    #[test]
    fn empty_trace_exports_header_only() {
        let text = to_csv(&Trace::new()).unwrap();
        assert_eq!(text, "time\n");
        let back = from_csv(&text).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(matches!(
            from_csv("t,a\n0,1\n"),
            Err(TraceError::ParseCsv { line: 1, .. })
        ));
        assert!(matches!(from_csv(""), Err(TraceError::ParseCsv { .. })));
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        let doc = "time,a,b\n0.0,1.0\n";
        assert!(matches!(
            from_csv(doc),
            Err(TraceError::ParseCsv { line: 2, .. })
        ));
        let doc = "time,a\n0.0,1.0,2.0\n";
        assert!(matches!(
            from_csv(doc),
            Err(TraceError::ParseCsv { line: 2, .. })
        ));
    }

    #[test]
    fn parse_rejects_bad_numbers() {
        let doc = "time,a\n0.0,xyz\n";
        assert!(matches!(
            from_csv(doc),
            Err(TraceError::ParseCsv { line: 2, .. })
        ));
    }

    #[test]
    fn rows_violating_series_invariants_carry_line_context() {
        // Backwards timestamp on line 3: previously surfaced without the
        // line number (or, worse, risked a silently partial trace).
        let doc = "time,a\n1.0,1.0\n0.5,2.0\n";
        match from_csv(doc) {
            Err(TraceError::Malformed { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("non-monotonic"), "{message}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Infinite value on line 2.
        let doc = "time,a\n0.0,inf\n";
        match from_csv(doc) {
            Err(TraceError::Malformed { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("non-finite"), "{message}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn nan_cells_are_skipped() {
        let doc = "time,a\n0.0,NaN\n1.0,2.0\n";
        let t = from_csv(doc).unwrap();
        assert_eq!(t.series_by_name("a").unwrap().len(), 1);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let doc = "time,a\n0.0,1.0\n\n1.0,2.0\n";
        let t = from_csv(doc).unwrap();
        assert_eq!(t.series_by_name("a").unwrap().len(), 2);
    }

    #[test]
    fn crlf_documents_parse_like_unix_ones() {
        let unix = "time,alpha,beta\n0,0,0\n0.5,-1,1\n1,-2,2\n";
        let windows = unix.replace('\n', "\r\n");
        let classic_mac = unix.replace('\n', "\r");
        let expected = from_csv(unix).unwrap();
        assert_eq!(from_csv(&windows).unwrap(), expected);
        assert_eq!(from_csv(&classic_mac).unwrap(), expected);
    }

    #[test]
    fn trailing_whitespace_and_padded_headers_are_tolerated() {
        let doc = "time, a , b\t\r\n0.0,1.0,2.0  \r\n1.0, NaN ,4.0\t\r\n";
        let t = from_csv(doc).unwrap();
        assert_eq!(t.series_by_name("a").unwrap().len(), 1);
        assert_eq!(t.series_by_name("b").unwrap().len(), 2);
        assert_eq!(t.series_by_name("b").unwrap().last().unwrap().value, 4.0);
    }

    #[test]
    fn crlf_errors_keep_accurate_line_numbers() {
        // Backwards timestamp on (1-based) line 3 of a CRLF document.
        let doc = "time,a\r\n1.0,1.0\r\n0.5,2.0\r\n";
        match from_csv(doc) {
            Err(TraceError::Malformed { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("non-monotonic"), "{message}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Ragged row on line 2 still errors despite the CRLF ending.
        let doc = "time,a,b\r\n0.0,1.0\r\n";
        assert!(matches!(
            from_csv(doc),
            Err(TraceError::ParseCsv { line: 2, .. })
        ));
    }
}
