//! Fleet soak benchmark: drives N synthetic vehicle streams through the
//! sharded fleet checker ([`adassure_fleet::Fleet`]) and records the
//! sustained ingestion numbers — streams, samples/sec and sampled
//! per-cycle latency quantiles — to `BENCH_fleet.json`.
//!
//! Every stream is a seeded LCG telemetry synthesizer (same shape as the
//! `monitor-server` demo: cross-track error with excursions, speed, a
//! lossy gnss channel), so runs are reproducible and every assertion in
//! the catalog fires somewhere in the fleet. Ingestion is wave-based:
//! each wave cuts `--batch` cycles per stream into one `SampleBatch`,
//! submits it (polling and retrying on saturation — the bounded queues
//! are real, so with enough streams per shard the soak exercises
//! backpressure by construction) and polls the shards on the shared
//! worker pool.
//!
//! ```text
//! fleet_soak [--streams N] [--cycles N] [--shards N] [--batch N]
//!            [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` is the CI mode: 10,240 concurrent streams for a short burst,
//! proving fleet-scale stream counts complete on one vCPU. The default
//! (full) mode runs fewer, longer streams and writes the committed
//! `BENCH_fleet.json` at the repo root.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin fleet_soak`

use std::time::Instant;

use adassure_core::{Assertion, Condition, Severity, SignalExpr};
use adassure_exp::Runtime;
use adassure_fleet::{Fleet, FleetConfig, SampleBatch, StreamId, SubmitError};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    benchmark: &'static str,
    regenerate: &'static str,
    streams: usize,
    shards: usize,
    workers: usize,
    cycles_per_stream: usize,
    cycles: u64,
    samples: u64,
    violations: u64,
    rejected_batches: u64,
    wall_s: f64,
    samples_per_sec: f64,
    cycles_per_sec: f64,
    /// Sampled per-cycle evaluation latency (log₂ buckets, so quantiles
    /// are upper bounds with one-octave relative error).
    cycle_p50_ns: f64,
    cycle_p99_ns: f64,
}

struct Args {
    streams: usize,
    cycles: usize,
    shards: usize,
    batch: usize,
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 0,
        cycles: 0,
        shards: 8,
        batch: 8,
        smoke: false,
        out: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match flag.as_str() {
            "--streams" => args.streams = grab("--streams"),
            "--cycles" => args.cycles = grab("--cycles"),
            "--shards" => args.shards = grab("--shards"),
            "--batch" => args.batch = grab("--batch").max(1),
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    // Smoke proves *stream count* (10k+ concurrent on one vCPU); the full
    // run proves *sustained throughput* on fewer, longer streams.
    if args.streams == 0 {
        args.streams = if args.smoke { 10_240 } else { 8_192 };
    }
    if args.cycles == 0 {
        args.cycles = if args.smoke { 16 } else { 250 };
    }
    if args.out.is_empty() {
        args.out = "BENCH_fleet.json".into();
    }
    args
}

fn catalog() -> Vec<Assertion> {
    vec![
        Assertion::new(
            "K1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack").abs(),
                limit: 1.0,
            },
        ),
        Assertion::new(
            "K2",
            "speed stays non-negative",
            Severity::Warning,
            Condition::AtLeast {
                expr: SignalExpr::signal("speed"),
                limit: 0.0,
            },
        ),
        Assertion::new(
            "K3",
            "gnss fix is fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.5,
            },
        ),
    ]
}

/// Seeded per-stream telemetry synthesizer (same LCG family as the
/// differential test, different constants per stream).
struct Synth {
    state: u64,
    t: f64,
}

impl Synth {
    fn new(seed: u64) -> Self {
        Synth {
            state: seed.wrapping_mul(2654435761).wrapping_add(12345),
            t: 0.0,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    fn uniform(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }

    /// Appends one cycle of samples at the stream's next timestamp.
    fn cycle_into(&mut self, batch: &mut SampleBatch) {
        self.t += 0.05;
        let roll = self.uniform();
        let xtrack = if roll < 0.02 {
            1.0 + self.uniform() * 2.0
        } else {
            self.uniform() * 0.9
        };
        batch.push(self.t, "xtrack", xtrack);
        batch.push(self.t, "speed", 4.0 + self.uniform());
        if self.uniform() > 0.2 {
            batch.push(self.t, "gnss_x", self.uniform() * 50.0);
        }
    }
}

fn main() {
    let args = parse_args();
    let runtime = Runtime::global();
    let mut fleet = Fleet::new(
        catalog(),
        FleetConfig {
            shards: args.shards,
            runtime,
            ..FleetConfig::default()
        },
    );

    let start = Instant::now();
    let ids: Vec<StreamId> = (0..args.streams).map(|_| fleet.open_stream()).collect();
    let mut synths: Vec<Synth> = (0..args.streams).map(|i| Synth::new(i as u64)).collect();
    assert_eq!(
        fleet.stats().open_streams,
        args.streams as u64,
        "every stream must be concurrently open"
    );

    let waves = args.cycles.div_ceil(args.batch);
    for wave in 0..waves {
        let cycles_this_wave = args.batch.min(args.cycles - wave * args.batch);
        for (id, synth) in ids.iter().zip(synths.iter_mut()) {
            let mut batch = SampleBatch::new(*id);
            for _ in 0..cycles_this_wave {
                synth.cycle_into(&mut batch);
            }
            loop {
                match fleet.submit(batch) {
                    Ok(()) => break,
                    Err(SubmitError::Saturated { batch: b, .. }) => {
                        fleet.poll();
                        batch = b;
                    }
                    Err(other) => panic!("submit failed: {other}"),
                }
            }
        }
        fleet.poll();
    }
    for id in &ids {
        fleet.close_stream(*id).expect("stream closes cleanly");
    }
    let wall_s = start.elapsed().as_secs_f64();

    let stats = fleet.stats();
    assert_eq!(stats.closed_streams, args.streams as u64);
    assert_eq!(stats.cycles, (args.streams * args.cycles) as u64);
    assert_eq!(stats.bad_cycles, 0, "synth timestamps are monotone");
    assert_eq!(stats.stale_batches, 0, "no batch outlived its stream");

    let latency = fleet.cycle_latency();
    let report = Report {
        benchmark: "fleet_soak",
        regenerate: "cargo run --release -p adassure-bench --bin fleet_soak",
        streams: args.streams,
        shards: args.shards,
        workers: runtime.workers(),
        cycles_per_stream: args.cycles,
        cycles: stats.cycles,
        samples: stats.samples,
        violations: stats.violations,
        rejected_batches: stats.rejected_batches,
        wall_s,
        samples_per_sec: stats.samples as f64 / wall_s,
        cycles_per_sec: stats.cycles as f64 / wall_s,
        cycle_p50_ns: latency.p50().unwrap_or(0.0),
        cycle_p99_ns: latency.p99().unwrap_or(0.0),
    };

    println!(
        "soak   : {} streams x {} cycles on {} shards / {} workers in {:.2} s",
        report.streams, report.cycles_per_stream, report.shards, report.workers, report.wall_s
    );
    println!(
        "ingest : {:.0} samples/sec, {:.0} cycles/sec ({} rejected batches retried)",
        report.samples_per_sec, report.cycles_per_sec, report.rejected_batches
    );
    println!(
        "latency: p50 <= {:.0} ns, p99 <= {:.0} ns per cycle ({} violations seen)",
        report.cycle_p50_ns, report.cycle_p99_ns, report.violations
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json + "\n").unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);
}
