//! **T4 — Extended attack taxonomy (extension)**: detection and diagnosis
//! of the three gain/noise/drift attack variants beyond the standard
//! eleven, including the scenario-dependence of gain faults (an IMU scale
//! fault is invisible until the vehicle turns).
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin table4_extended_attacks`

use adassure_control::ControllerKind;
use adassure_exp::agg::{fmt_mean_std, latencies, top_k_hits};
use adassure_exp::{AttackSet, Campaign, Grid, RunRecord};
use adassure_scenarios::ScenarioKind;

fn main() {
    let controller = ControllerKind::PurePursuit;
    let seeds = [1u64, 2, 3];
    let grid = Grid::new()
        .scenarios([
            ScenarioKind::Straight,
            ScenarioKind::SCurve,
            ScenarioKind::UrbanLoop,
        ])
        .controllers([controller])
        .attacks(AttackSet::ExtensionOnly)
        .seeds(seeds);
    let report = Campaign::new("t4_extended_attacks", grid)
        .run()
        .expect("campaign");

    println!(
        "T4: extended attack taxonomy, per scenario class ({controller} stack, seeds {seeds:?})\n"
    );
    println!(
        "{:<20} {:<12} {:>11} {:>14} {:>8} {:>8}",
        "attack", "scenario", "detected", "latency (s)", "top-1", "top-2"
    );

    for sk in [
        ScenarioKind::Straight,
        ScenarioKind::SCurve,
        ScenarioKind::UrbanLoop,
    ] {
        for attack in AttackSet::ExtensionOnly.specs(0.0) {
            // Diagnosis is scored over the detected runs only.
            let detected: Vec<&RunRecord> = report.select(|r| {
                r.scenario == sk.name() && r.attack.as_deref() == Some(attack.name()) && r.detected
            });
            let latencies = latencies(detected.iter().copied());
            let (top1, _) = top_k_hits(detected.iter().copied(), 1);
            let (top2, _) = top_k_hits(detected.iter().copied(), 2);
            println!(
                "{:<20} {:<12} {:>8}/{:<2} {:>14} {:>7} {:>8}",
                attack.name(),
                sk.name(),
                detected.len(),
                seeds.len(),
                fmt_mean_std(&latencies),
                format!("{top1}/{}", detected.len()),
                format!("{top2}/{}", detected.len()),
            );
        }
    }
    println!("\n(imu_yaw_scale is a *gain* fault: invisible on straight roads where");
    println!(" there is no yaw to scale, caught within half a second once turning.");
    println!(" compass_drift is the heading analogue of the GNSS drag-away spoof and");
    println!(" shares its stealth: behavioural detection only, tens of seconds in.)");

    let path = report.write_json("results").expect("write results json");
    eprintln!("wrote {}", path.display());
}
