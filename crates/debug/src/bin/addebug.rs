//! `addebug` — time-travel debugging CLI for ADAssure runs.
//!
//! ```text
//! addebug replay   --scenario S --seed N [--controller C] [--estimator E] \
//!                  [--attack a,b,...] --cycle K [--interval N]
//! addebug replay   --repro FILE --cycle K [--interval N]
//! addebug minimize --scenario S --seed N [--controller C] [--estimator E] \
//!                  --attack a,b,... --out FILE [--assertion ID] [--max-runs N]
//! addebug rerun    FILE
//! ```
//!
//! `replay` re-executes the run deterministically to cycle `K` (restoring
//! the nearest checkpoint for backward jumps) and dumps signals,
//! per-assertion verdicts/health, compiled-expression values and the
//! violations so far. `minimize` shrinks the attack timeline to a
//! 1-minimal repro and writes it as a self-contained JSON case. `rerun`
//! re-executes such a case and verifies it still reproduces.

use std::process::ExitCode;

use adassure_attacks::campaign::{extended_attacks, AttackSpec};
use adassure_attacks::AttackTimeline;
use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_core::HealthState;
use adassure_debug::{minimize, DebugSession, DebugSpec, MinimizeConfig, StateDump};
use adassure_exp::rerun::{reproduces, run_repro};
use adassure_scenarios::{ReproCase, Scenario, ScenarioKind};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("addebug: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("replay") => replay(&args[1..]),
        Some("minimize") => cmd_minimize(&args[1..]),
        Some("rerun") => rerun(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "\
usage:
  addebug replay   --scenario S --seed N [--controller C] [--estimator E] \\
                   [--attack a,b,...] --cycle K [--interval N]
  addebug replay   --repro FILE --cycle K [--interval N]
  addebug minimize --scenario S --seed N [--controller C] [--estimator E] \\
                   --attack a,b,... --out FILE [--assertion ID] [--max-runs N]
  addebug rerun    FILE

--controller defaults to pure_pursuit, --estimator to complementary.
";

/// Flag parser shared by `replay` and `minimize`: collects `--flag value`
/// pairs, rejecting anything unknown.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String], allowed: &[&str]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if !allowed.contains(&flag.as_str()) {
                return Err(format!("unknown flag {flag:?}\n{USAGE}"));
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag {flag} needs a value"))?;
            pairs.push((flag.clone(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, flag: &str) -> Result<&str, String> {
        self.get(flag).ok_or_else(|| format!("missing {flag}"))
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, String> {
        match self.get(flag) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("{flag}: cannot parse {raw:?}")),
        }
    }
}

fn find_by_name<T: Copy>(
    what: &str,
    name: &str,
    all: impl IntoIterator<Item = T>,
    name_of: impl Fn(T) -> &'static str,
) -> Result<T, String> {
    let mut names = Vec::new();
    for item in all {
        if name_of(item) == name {
            return Ok(item);
        }
        names.push(name_of(item));
    }
    Err(format!(
        "unknown {what} {name:?}; expected one of: {}",
        names.join(", ")
    ))
}

/// Resolves a comma-separated attack name list against the extended
/// catalog for the scenario (standard magnitudes and windows).
fn parse_timeline(names: Option<&str>, scenario: &Scenario) -> Result<AttackTimeline, String> {
    let Some(names) = names else {
        return Ok(AttackTimeline::new([]));
    };
    let catalog = extended_attacks(scenario.attack_start);
    let mut entries: Vec<AttackSpec> = Vec::new();
    for name in names.split(',').filter(|s| !s.is_empty()) {
        let spec = catalog.iter().find(|s| s.name() == name).ok_or_else(|| {
            let known: Vec<&str> = catalog.iter().map(AttackSpec::name).collect();
            format!(
                "unknown attack {name:?}; expected one of: {}",
                known.join(", ")
            )
        })?;
        entries.push(*spec);
    }
    Ok(AttackTimeline::new(entries))
}

/// Builds the `DebugSpec` from flags — either `--repro FILE` or the
/// explicit `--scenario/--controller/--estimator/--seed/--attack` set.
fn spec_from_flags(flags: &Flags) -> Result<DebugSpec, String> {
    if let Some(path) = flags.get("--repro") {
        let case = ReproCase::load(path).map_err(|e| e.to_string())?;
        return Ok(DebugSpec::from_repro(&case));
    }
    let scenario = find_by_name(
        "scenario",
        flags.require("--scenario")?,
        ScenarioKind::ALL,
        ScenarioKind::name,
    )?;
    let controller = find_by_name(
        "controller",
        flags.get("--controller").unwrap_or("pure_pursuit"),
        ControllerKind::ALL,
        ControllerKind::name,
    )?;
    let estimator = find_by_name(
        "estimator",
        flags.get("--estimator").unwrap_or("complementary"),
        EstimatorKind::ALL,
        EstimatorKind::name,
    )?;
    let seed = flags
        .parsed::<u64>("--seed")?
        .ok_or_else(|| "missing --seed".to_owned())?;
    let full = Scenario::of_kind(scenario).map_err(|e| e.to_string())?;
    let timeline = parse_timeline(flags.get("--attack"), &full)?;
    Ok(DebugSpec {
        scenario,
        controller,
        estimator,
        seed,
        timeline,
    })
}

fn replay(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(
        args,
        &[
            "--scenario",
            "--controller",
            "--estimator",
            "--seed",
            "--attack",
            "--repro",
            "--cycle",
            "--interval",
        ],
    )?;
    let spec = spec_from_flags(&flags)?;
    let cycle = flags
        .parsed::<u64>("--cycle")?
        .ok_or_else(|| "missing --cycle".to_owned())?;
    let interval = flags.parsed::<u64>("--interval")?.unwrap_or(500);
    let mut session = DebugSession::new(&spec, interval).map_err(|e| e.to_string())?;
    session.run_to(cycle).map_err(|e| e.to_string())?;
    print_dump(&spec, &session.inspect(), session.checkpoints().len());
    Ok(ExitCode::SUCCESS)
}

fn print_dump(spec: &DebugSpec, dump: &StateDump, checkpoints: usize) {
    let ctx = spec.context();
    println!(
        "run: {} / {} / {}  seed {}  attack {}",
        ctx.scenario,
        ctx.controller,
        ctx.estimator,
        ctx.seed,
        ctx.attack.as_deref().unwrap_or("none"),
    );
    println!(
        "paused at cycle {} (t = {:.2} s), {checkpoints} checkpoint(s) captured",
        dump.cycle, dump.time
    );
    let v = &dump.vehicle;
    println!(
        "vehicle: x={:.3} y={:.3} heading={:.4} speed={:.3} lateral_speed={:.4} yaw_rate={:.4}",
        v.position.x, v.position.y, v.heading, v.speed, v.lateral_speed, v.yaw_rate
    );
    println!("signals ({}):", dump.signals.len());
    for s in &dump.signals {
        println!("  {:<24} t={:<8.2} {:+.6}", s.name, s.time, s.value);
    }
    println!("assertions ({}):", dump.assertions.len());
    for a in &dump.assertions {
        let value = a
            .value
            .map_or_else(|| "-".to_owned(), |x| format!("{x:+.6}"));
        let health = match a.health {
            HealthState::Active => "active".to_owned(),
            HealthState::Degraded(n) => format!("degraded({n})"),
            HealthState::Suspended => "suspended".to_owned(),
        };
        println!(
            "  {:<6} {:<12} {:<12} value={:<14} {}",
            a.id,
            a.verdict.name(),
            health,
            value,
            a.description
        );
    }
    if dump.violations.is_empty() {
        println!("violations so far: none");
    } else {
        println!("violations so far ({}):", dump.violations.len());
        for v in &dump.violations {
            println!(
                "  {:<6} cycle {:<7} onset {:.2} s detected {:.2} s value {:+.4}",
                v.assertion.as_str(),
                v.cycle,
                v.onset,
                v.detected,
                v.value
            );
        }
    }
}

fn cmd_minimize(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(
        args,
        &[
            "--scenario",
            "--controller",
            "--estimator",
            "--seed",
            "--attack",
            "--repro",
            "--out",
            "--assertion",
            "--max-runs",
        ],
    )?;
    let spec = spec_from_flags(&flags)?;
    let out = flags.require("--out")?.to_owned();
    let mut config = MinimizeConfig::default();
    if let Some(max_runs) = flags.parsed::<usize>("--max-runs")? {
        config.max_runs = max_runs;
    }
    let minimized = match flags.get("--assertion") {
        Some(id) => adassure_debug::minimize::minimize_target(&spec, Some(id), &config),
        None => minimize(&spec, &config),
    }
    .map_err(|e| e.to_string())?;
    let case = &minimized.case;
    println!(
        "minimized in {} run(s): {} -> {} attack entr{}",
        minimized.runs,
        minimized.original_entries,
        case.timeline.len(),
        if case.timeline.len() == 1 { "y" } else { "ies" },
    );
    for entry in &case.timeline.entries {
        let end = if entry.window.end.is_finite() {
            format!("{:.2}", entry.window.end)
        } else {
            "open".to_owned()
        };
        println!(
            "  {:<16} window [{:.2} s, {end} s)  {:?}",
            entry.name(),
            entry.window.start,
            entry.kind
        );
    }
    println!(
        "reproduces {} at cycle {}",
        case.expect.assertion, case.expect.cycle
    );
    case.write(&out).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(ExitCode::SUCCESS)
}

fn rerun(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err(format!("rerun takes exactly one file argument\n{USAGE}"));
    };
    let case = ReproCase::load(path).map_err(|e| e.to_string())?;
    let (_, report) = run_repro(&case).map_err(|e| e.to_string())?;
    println!("case: {}", case.description);
    if reproduces(&case, &report) {
        let v = report
            .violations_of(&case.expect.assertion)
            .next()
            .ok_or_else(|| "violation vanished between check and print".to_owned())?;
        println!(
            "reproduced: {} fired at cycle {} (expected cycle {}), onset {:.2} s, value {:+.4}",
            case.expect.assertion, v.cycle, case.expect.cycle, v.onset, v.value
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "NOT reproduced: {} did not fire ({} other violation(s))",
            case.expect.assertion,
            report.violations.len()
        );
        Ok(ExitCode::from(2))
    }
}
