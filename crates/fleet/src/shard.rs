//! One shard: a generational slab of stream states plus the drain loop
//! that turns queued sample batches into checker cycles.
//!
//! A shard owns its streams exclusively — the fleet wraps each shard in a
//! `Mutex` and drains shards in parallel on the shared worker pool, so no
//! two workers ever touch the same stream. Everything a drain computes is
//! a pure function of the per-stream batch sequence, which is what makes
//! sharded output bit-identical to serial checking (see DESIGN.md §11).

use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;

use adassure_attacks::ChannelFaultInjector;
use adassure_core::{
    CheckReport, CheckerPlan, CheckerState, HealthConfig, OnlineChecker, Severity,
};
use adassure_obs::{Histogram, MetricsSnapshot};

use crate::guard::{GuardState, StreamGuard};
use crate::stream::{SampleBatch, StreamId};

/// Sample the per-cycle wall-clock latency every `TIMING_MASK + 1` cycles
/// — dense enough for soak p50/p99, cheap enough for the hot path.
const TIMING_MASK: u64 = 7;

/// Per-stream ingestion options (fault injection, guardian).
#[derive(Debug, Default)]
pub struct StreamConfig {
    /// A deterministic telemetry-fault injector applied to every sample
    /// before it reaches the checker (`None` = clean link).
    pub injector: Option<ChannelFaultInjector>,
    /// A per-stream guardian fed each cycle's critical-alarm status
    /// (`None` = no guardian, no guard transitions in the metrics).
    pub guard: Option<StreamGuard>,
}

/// What one stream carries at runtime.
#[derive(Debug)]
struct StreamSlot {
    /// Global open-order sequence number; fleet metrics merge in `seq`
    /// order so the merged snapshot is independent of shard count.
    seq: u64,
    checker: OnlineChecker,
    injector: Option<ChannelFaultInjector>,
    guard: Option<StreamGuard>,
    /// Timestamp of the last closed cycle, the stream's end time at close.
    last_t: f64,
}

#[derive(Debug)]
struct SlabSlot {
    /// Bumped on close; a mismatching [`StreamId::gen`] marks a stale
    /// batch.
    gen: u32,
    state: Option<StreamSlot>,
}

/// Counters a single [`Shard::drain`] call accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Batches consumed from the queue.
    pub batches: u64,
    /// Samples offered to checkers (before fault injection).
    pub samples: u64,
    /// Cycles closed.
    pub cycles: u64,
    /// New violations raised.
    pub violations: u64,
    /// Cycle groups rejected by `begin_cycle` (non-monotone or non-finite
    /// timestamps); their samples are skipped, and counted here.
    pub bad_cycles: u64,
    /// Batches addressed to a closed generation, dropped.
    pub stale_batches: u64,
}

impl DrainStats {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &DrainStats) {
        self.batches += other.batches;
        self.samples += other.samples;
        self.cycles += other.cycles;
        self.violations += other.violations;
        self.bad_cycles += other.bad_cycles;
        self.stale_batches += other.stale_batches;
    }
}

/// Errors from operations addressed to a specific stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The id's generation does not match the slot (stream already
    /// closed).
    StaleGeneration,
    /// The id's slot does not exist on this shard.
    UnknownSlot,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::StaleGeneration => write!(f, "stream already closed (stale generation)"),
            StreamError::UnknownSlot => write!(f, "no such stream slot on this shard"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Plain-data snapshot of one live stream inside a shard checkpoint.
#[derive(Debug, Clone)]
pub(crate) struct StreamState {
    pub(crate) seq: u64,
    pub(crate) last_t: f64,
    pub(crate) checker: CheckerState,
    pub(crate) guard: Option<GuardState>,
}

/// Plain-data snapshot of one slab slot (generation plus optional live
/// stream).
#[derive(Debug, Clone)]
pub(crate) struct SlotState {
    pub(crate) gen: u32,
    pub(crate) stream: Option<StreamState>,
}

/// Plain-data snapshot of a whole shard: slab layout (including the free
/// list, whose order determines future slot reuse), cumulative counters,
/// and the timing histogram.
#[derive(Debug, Clone)]
pub(crate) struct ShardState {
    pub(crate) slots: Vec<SlotState>,
    pub(crate) free: Vec<u32>,
    pub(crate) totals: DrainStats,
    pub(crate) cycle_ns: Histogram,
    pub(crate) cycle_counter: u64,
}

#[derive(Debug)]
pub(crate) struct Shard {
    index: u32,
    rx: Receiver<SampleBatch>,
    slots: Vec<SlabSlot>,
    free: Vec<u32>,
    live: usize,
    /// Cumulative drain counters since construction.
    totals: DrainStats,
    /// Sampled wall-clock per-cycle latency (see [`TIMING_MASK`]).
    cycle_ns: Histogram,
    /// Cycles closed on this shard, for the timing stride.
    cycle_counter: u64,
}

impl Shard {
    pub(crate) fn new(index: u32, rx: Receiver<SampleBatch>) -> Self {
        Shard {
            index,
            rx,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            totals: DrainStats::default(),
            cycle_ns: Histogram::nanos(),
            cycle_counter: 0,
        }
    }

    pub(crate) fn live(&self) -> usize {
        self.live
    }

    pub(crate) fn totals(&self) -> DrainStats {
        self.totals
    }

    pub(crate) fn cycle_ns(&self) -> &Histogram {
        &self.cycle_ns
    }

    /// Allocates a slot for a new stream and returns its id.
    pub(crate) fn open(
        &mut self,
        seq: u64,
        plan: &Arc<CheckerPlan>,
        health: HealthConfig,
        config: StreamConfig,
    ) -> StreamId {
        let state = StreamSlot {
            seq,
            checker: OnlineChecker::from_plan(Arc::clone(plan), health),
            injector: config.injector,
            guard: config.guard,
            last_t: 0.0,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].state = Some(state);
                slot
            }
            None => {
                self.slots.push(SlabSlot {
                    gen: 0,
                    state: Some(state),
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        StreamId {
            shard: self.index,
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Closes a stream: finalises its checker at the last closed cycle's
    /// timestamp and frees the slot (generation bumped). The caller must
    /// drain the shard first so queued batches are not silently lost.
    pub(crate) fn close(
        &mut self,
        id: StreamId,
    ) -> Result<(CheckReport, MetricsSnapshot), StreamError> {
        let slab = self
            .slots
            .get_mut(id.slot as usize)
            .ok_or(StreamError::UnknownSlot)?;
        if slab.gen != id.gen || slab.state.is_none() {
            return Err(StreamError::StaleGeneration);
        }
        let state = slab.state.take().expect("checked above");
        slab.gen = slab.gen.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        let end = state.last_t;
        let (report, mut snapshot, _) = state.checker.finish_observed(end);
        if let Some(guard) = &state.guard {
            snapshot.guard_transitions = guard.transitions();
        }
        Ok((report, snapshot))
    }

    /// Consumes every queued batch and advances the addressed checkers.
    /// Returns this call's counters (also accumulated into the totals).
    pub(crate) fn drain(&mut self) -> DrainStats {
        let mut stats = DrainStats::default();
        while let Ok(batch) = self.rx.try_recv() {
            stats.batches += 1;
            self.process(batch, &mut stats);
        }
        self.totals.merge(&stats);
        stats
    }

    fn process(&mut self, batch: SampleBatch, stats: &mut DrainStats) {
        let Some(slab) = self.slots.get_mut(batch.stream.slot as usize) else {
            stats.stale_batches += 1;
            return;
        };
        if slab.gen != batch.stream.gen {
            stats.stale_batches += 1;
            return;
        }
        let Some(stream) = slab.state.as_mut() else {
            stats.stale_batches += 1;
            return;
        };
        let samples = &batch.samples;
        stats.samples += samples.len() as u64;
        let mut i = 0;
        while i < samples.len() {
            let t = samples[i].t;
            // One cycle = the run of equal timestamps starting here.
            let mut end = i;
            while end < samples.len() && samples[end].t == t {
                end += 1;
            }
            if stream.checker.begin_cycle(t).is_err() {
                stats.bad_cycles += 1;
                i = end;
                continue;
            }
            let timed = (self.cycle_counter & TIMING_MASK == 0).then(Instant::now);
            for sample in &samples[i..end] {
                match &mut stream.injector {
                    Some(injector) => {
                        let delivery = injector.apply(sample.channel.as_str(), t, sample.value);
                        for &value in delivery.as_slice() {
                            stream.checker.update(sample.channel.clone(), value);
                        }
                    }
                    None => stream.checker.update(sample.channel.clone(), sample.value),
                }
            }
            let new_violations = stream.checker.end_cycle();
            stats.cycles += 1;
            stats.violations += new_violations as u64;
            stream.last_t = t;
            if let Some(guard) = &mut stream.guard {
                let alarmed = stream
                    .checker
                    .open_episode_onset(Severity::Critical)
                    .is_some();
                guard.observe(alarmed);
            }
            if let Some(t0) = timed {
                self.cycle_ns.record(t0.elapsed().as_nanos() as f64);
            }
            self.cycle_counter += 1;
            i = end;
        }
    }

    /// Captures the shard's complete state (slab layout, checkers,
    /// guardians, counters) as plain data. The caller must have drained
    /// the shard first so the queue is empty — queued batches are not part
    /// of the snapshot.
    ///
    /// # Errors
    ///
    /// Streams carrying a [`ChannelFaultInjector`] are rejected with a
    /// description: injector RNG state is not serializable, so
    /// checkpointing is only supported for clean-link streams (the wire
    /// path never attaches injectors).
    pub(crate) fn save_state(&self) -> Result<ShardState, String> {
        let mut slots = Vec::with_capacity(self.slots.len());
        for (index, slab) in self.slots.iter().enumerate() {
            let stream = match &slab.state {
                None => None,
                Some(stream) => {
                    if stream.injector.is_some() {
                        return Err(format!(
                            "stream in shard {} slot {index} carries a fault injector; \
                             injector-bearing streams cannot be checkpointed",
                            self.index
                        ));
                    }
                    Some(StreamState {
                        seq: stream.seq,
                        last_t: stream.last_t,
                        checker: stream.checker.save_state(),
                        guard: stream.guard.as_ref().map(StreamGuard::save_state),
                    })
                }
            };
            slots.push(SlotState {
                gen: slab.gen,
                stream,
            });
        }
        Ok(ShardState {
            slots,
            free: self.free.clone(),
            totals: self.totals,
            cycle_ns: self.cycle_ns.clone(),
            cycle_counter: self.cycle_counter,
        })
    }

    /// Replaces this (freshly constructed, empty) shard's state with a
    /// previously captured [`ShardState`]. Slot indices, generations and
    /// free-list order are restored exactly, so post-restore opens reuse
    /// slots identically to an uninterrupted run.
    pub(crate) fn restore_state(
        &mut self,
        state: ShardState,
        plan: &Arc<CheckerPlan>,
        health: HealthConfig,
    ) -> Result<(), String> {
        debug_assert!(self.slots.is_empty(), "restore into a used shard");
        let mut live = 0;
        let mut slots = Vec::with_capacity(state.slots.len());
        for (index, slot) in state.slots.into_iter().enumerate() {
            let stream = match slot.stream {
                None => None,
                Some(s) => {
                    let checker = OnlineChecker::restore(Arc::clone(plan), health, s.checker)
                        .map_err(|e| format!("shard {} slot {index}: {e}", self.index))?;
                    live += 1;
                    Some(StreamSlot {
                        seq: s.seq,
                        checker,
                        injector: None,
                        guard: s.guard.map(StreamGuard::from_state),
                        last_t: s.last_t,
                    })
                }
            };
            slots.push(SlabSlot {
                gen: slot.gen,
                state: stream,
            });
        }
        for &slot in &state.free {
            if slot as usize >= slots.len() {
                return Err(format!(
                    "shard {}: free-list entry {slot} out of range ({} slots)",
                    self.index,
                    slots.len()
                ));
            }
        }
        self.slots = slots;
        self.free = state.free;
        self.live = live;
        self.totals = state.totals;
        self.cycle_ns = state.cycle_ns;
        self.cycle_counter = state.cycle_counter;
        Ok(())
    }

    /// Appends `(seq, snapshot)` for every live stream, guard transitions
    /// stitched in. The fleet sorts by `seq` before merging.
    pub(crate) fn snapshots(&self, out: &mut Vec<(u64, MetricsSnapshot)>) {
        for slab in &self.slots {
            if let Some(stream) = &slab.state {
                let mut snap = stream.checker.metrics();
                if let Some(guard) = &stream.guard {
                    snap.guard_transitions = guard.transitions();
                }
                out.push((stream.seq, snap));
            }
        }
    }
}
