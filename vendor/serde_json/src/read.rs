//! JSON parsing: recursive descent into the generic [`Content`] tree.

use crate::Error;
use serde::de::Content;

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        serde::ser::Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let second = self.hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if integral {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error("invalid number"))
    }
}
