//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A size specification: an exact length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.u64_in(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::vec;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn length_specs_are_respected() {
        let mut rng = TestRng::deterministic("vec");
        let ranged = vec(0.0f64..1.0, 2..5);
        let exact = vec(0u64..10, 3usize);
        for _ in 0..300 {
            let r = ranged.generate(&mut rng);
            assert!((2..5).contains(&r.len()));
            assert_eq!(exact.generate(&mut rng).len(), 3);
        }
    }
}
