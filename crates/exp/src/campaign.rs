//! Campaign execution: the single entry point from a grid cell to a
//! structured record.
//!
//! Every harness — tables, figures and ablations alike — reaches the
//! simulator through [`execute`] (or through [`Campaign::run`], which maps
//! it over a whole grid in parallel), so scenario wiring, catalog choice,
//! checking and record construction are decided in exactly one place.

use adassure_control::pipeline::AdStack;
use adassure_core::catalog::{self, CatalogConfig};
use adassure_core::{checker, Assertion, CheckReport};
use adassure_scenarios::{run, Scenario};
use adassure_sim::engine::SimOutput;
use adassure_sim::SimError;

use crate::grid::{Grid, RunSpec};
use crate::par;
use crate::record::{CampaignReport, RunRecord};

/// Picks an assertion catalog for a scenario. Campaigns default to
/// [`standard_catalog`]; the mining and ablation studies substitute their
/// own (mined, reduced or rescaled) catalogs through
/// [`Campaign::with_catalog`].
pub type CatalogSource<'a> = dyn Fn(&Scenario) -> Vec<Assertion> + Send + Sync + 'a;

/// The catalog configuration matched to a scenario: goal-distance for open
/// routes (enabling A12), defaults otherwise.
pub fn catalog_config_for(scenario: &Scenario) -> CatalogConfig {
    let config = CatalogConfig::default();
    if scenario.track.is_closed() {
        config
    } else {
        config.with_goal_distance(scenario.route_length())
    }
}

/// The standard catalog for a scenario.
pub fn standard_catalog(scenario: &Scenario) -> Vec<Assertion> {
    catalog::build(&catalog_config_for(scenario))
}

/// Executes one grid cell against a catalog: builds the scenario and stack,
/// runs the engine (injecting the cell's attack, if any) and checks the
/// trace.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]); standard scenarios with
/// standard stacks never produce one.
pub fn execute(spec: &RunSpec, cat: &[Assertion]) -> Result<(SimOutput, CheckReport), SimError> {
    let scenario = Scenario::of_kind(spec.scenario)?;
    let config = run::stack_config(&scenario, spec.controller).with_estimator(spec.estimator);
    let mut stack = AdStack::new(config, scenario.track.clone());
    let engine = run::engine_for(&scenario, spec.seed);
    let output = match spec.attack {
        Some(attack) => {
            let mut injector = attack.injector(spec.seed);
            engine.run_with_tap(&mut stack, &mut injector)?
        }
        None => engine.run(&mut stack)?,
    };
    let report = checker::check(cat, &output.trace);
    Ok((output, report))
}

/// A named grid plus a catalog source: one experiment campaign.
pub struct Campaign<'a> {
    name: String,
    grid: Grid,
    catalog: Box<CatalogSource<'a>>,
}

impl std::fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("name", &self.name)
            .field("grid", &self.grid)
            .finish_non_exhaustive()
    }
}

impl<'a> Campaign<'a> {
    /// A campaign over `grid` using the standard per-scenario catalog.
    pub fn new(name: impl Into<String>, grid: Grid) -> Self {
        Campaign {
            name: name.into(),
            grid,
            catalog: Box::new(standard_catalog),
        }
    }

    /// Replaces the catalog source (mined, reduced or rescaled catalogs).
    pub fn with_catalog(
        mut self,
        source: impl Fn(&Scenario) -> Vec<Assertion> + Send + Sync + 'a,
    ) -> Self {
        self.catalog = Box::new(source);
        self
    }

    /// The campaign's grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Executes every cell of the grid — in parallel, deterministically —
    /// and collects the records in cell order.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in cell order.
    pub fn run(&self) -> Result<CampaignReport, SimError> {
        let cells = self.grid.cells();
        // Catalogs depend only on the scenario; resolve each kind once up
        // front instead of per cell.
        let mut catalogs: Vec<(adassure_scenarios::ScenarioKind, Vec<Assertion>)> = Vec::new();
        for cell in &cells {
            if !catalogs.iter().any(|(kind, _)| *kind == cell.scenario) {
                let scenario = Scenario::of_kind(cell.scenario)?;
                catalogs.push((cell.scenario, (self.catalog)(&scenario)));
            }
        }
        let runs = par::map(&cells, |spec| {
            let cat = &catalogs
                .iter()
                .find(|(kind, _)| *kind == spec.scenario)
                .expect("catalog resolved for every scenario in the grid")
                .1;
            execute(spec, cat).map(|(output, report)| RunRecord::from_run(spec, &output, &report))
        });
        Ok(CampaignReport {
            name: self.name.clone(),
            runs: runs.into_iter().collect::<Result<_, _>>()?,
            summaries: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::AttackSet;
    use adassure_control::ControllerKind;
    use adassure_scenarios::ScenarioKind;

    #[test]
    fn execute_detects_a_standard_attack() {
        let grid = Grid::new()
            .attacks(AttackSet::Standard)
            .include_clean(true)
            .seeds([1]);
        let cells = grid.cells();
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let cat = standard_catalog(&scenario);

        let (clean_out, clean_report) = execute(&cells[0], &cat).unwrap();
        assert!(clean_out.reached_goal);
        assert!(clean_report.is_clean(), "clean run raised {clean_report:?}");

        // Cell 1 is the gnss_bias attack; the catalog must catch it.
        let (_, attacked) = execute(&cells[1], &cat).unwrap();
        assert!(attacked.detection_latency(cells[1].alarm_start()).is_some());
    }

    #[test]
    fn campaign_produces_records_in_cell_order() {
        let grid = Grid::new()
            .scenarios([ScenarioKind::Straight])
            .controllers([ControllerKind::PurePursuit])
            .attacks(AttackSet::None)
            .include_clean(true)
            .seeds([1, 2]);
        let report = Campaign::new("unit_clean", grid).run().unwrap();
        assert_eq!(report.name, "unit_clean");
        assert_eq!(report.runs.len(), 2);
        for (i, run) in report.runs.iter().enumerate() {
            assert_eq!(run.cell, i);
            assert!(run.attack.is_none());
            assert!(!run.detected, "clean false positive: {run:?}");
        }
        assert_eq!(report.runs[0].seed, 1);
        assert_eq!(report.runs[1].seed, 2);
    }

    #[test]
    fn custom_catalogs_are_honoured() {
        let grid = Grid::new().attacks(AttackSet::None).include_clean(true);
        let report = Campaign::new("unit_empty_catalog", grid)
            .with_catalog(|_| Vec::new())
            .run()
            .unwrap();
        assert!(report.runs[0].violated.is_empty());
    }
}
