//! The steppable debug session: one deterministic run, driven cycle by
//! cycle with an online checker in the loop and periodic checkpoints.
//!
//! A [`DebugSession`] reproduces exactly what the campaign engine's
//! `execute` would compute for the same spec — the engine loop is
//! [`adassure_sim::engine::SimSession`], the checker is fed each cycle's
//! samples in the same name-sorted order `checker::for_each_cycle` uses
//! offline, and the catalog is the campaign's standard catalog — so every
//! verdict observed live matches the offline report bit for bit.
//!
//! Time travel is checkpoint + fast-forward: [`DebugSession::run_to`]
//! restores the nearest checkpoint at or before the target cycle and
//! steps deterministically from there.

use adassure_attacks::{AttackTimeline, MultiInjector};
use adassure_control::pipeline::{AdStack, EstimatorKind};
use adassure_control::ControllerKind;
use adassure_core::checker;
use adassure_core::expr::Env;
use adassure_core::online::HealthState;
use adassure_core::{
    Assertion, CheckReport, Condition, HealthConfig, OnlineChecker, RunContext, Violation,
};
use adassure_exp::campaign::standard_catalog;
use adassure_exp::RunSpec;
use adassure_obs::Verdict;
use adassure_scenarios::{run, ReproCase, ReproExpectation, Scenario, ScenarioKind};
use adassure_sim::engine::{SimOutput, SimSession};
use adassure_sim::vehicle::VehicleState;
use adassure_trace::SignalId;

use crate::checkpoint::{DriverState, SimCheckpoint};
use crate::DebugError;

/// Everything that pins one deterministic run: the debugging analogue of
/// a campaign `RunSpec`, with the attack generalised to a timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DebugSpec {
    /// The scenario to drive.
    pub scenario: ScenarioKind,
    /// The lateral controller under test.
    pub controller: ControllerKind,
    /// The state estimator under test.
    pub estimator: EstimatorKind,
    /// The simulation seed.
    pub seed: u64,
    /// The attack timeline (empty = clean run).
    pub timeline: AttackTimeline,
}

impl DebugSpec {
    /// Lifts a campaign grid cell into a debug spec (its attack becomes a
    /// one-entry timeline, which injects identically).
    pub fn from_run_spec(spec: &RunSpec) -> Self {
        DebugSpec {
            scenario: spec.scenario,
            controller: spec.controller,
            estimator: spec.estimator,
            seed: spec.seed,
            timeline: match spec.attack {
                Some(attack) => AttackTimeline::single(attack),
                None => AttackTimeline::new([]),
            },
        }
    }

    /// Lifts a stored repro case into a debug spec.
    pub fn from_repro(case: &ReproCase) -> Self {
        DebugSpec {
            scenario: case.scenario,
            controller: case.controller,
            estimator: case.estimator,
            seed: case.seed,
            timeline: case.timeline.clone(),
        }
    }

    /// Packages this spec (with a possibly edited timeline) as a
    /// self-contained repro case.
    pub fn repro_case(
        &self,
        description: impl Into<String>,
        timeline: AttackTimeline,
        expect: ReproExpectation,
    ) -> ReproCase {
        ReproCase {
            description: description.into(),
            scenario: self.scenario,
            controller: self.controller,
            estimator: self.estimator,
            seed: self.seed,
            timeline,
            expect,
        }
    }

    /// The context stamp for reports produced from this spec.
    pub fn context(&self) -> RunContext {
        RunContext {
            seed: self.seed,
            scenario: self.scenario.name().to_owned(),
            controller: self.controller.name().to_owned(),
            estimator: self.estimator.name().to_owned(),
            attack: match self.timeline.len() {
                0 => None,
                1 => Some(self.timeline.entries[0].name().to_owned()),
                n => Some(format!("timeline[{n}]")),
            },
        }
    }
}

/// The last recorded value of one signal at inspection time.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalValue {
    /// Signal name.
    pub name: String,
    /// Timestamp of the last sample (s).
    pub time: f64,
    /// Last recorded value.
    pub value: f64,
}

/// One assertion's view of the run at inspection time.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionDump {
    /// Assertion id (e.g. `"A7"`).
    pub id: String,
    /// Human-readable invariant.
    pub description: String,
    /// The monitor's verdict at the last completed cycle.
    pub verdict: Verdict,
    /// The monitor's telemetry-health state.
    pub health: HealthState,
    /// Value of the compiled monitored expression at the last completed
    /// cycle (for freshness assertions: the observed signal age), when
    /// its inputs have been seen.
    pub value: Option<f64>,
}

/// Everything [`DebugSession::inspect`] reveals about the paused run.
#[derive(Debug, Clone)]
pub struct StateDump {
    /// Completed cycles (the pause point).
    pub cycle: u64,
    /// Timestamp of the last completed cycle (s); 0 before the first.
    pub time: f64,
    /// Ground-truth vehicle state.
    pub vehicle: VehicleState,
    /// Last value of every recorded signal, name-sorted.
    pub signals: Vec<SignalValue>,
    /// Per-assertion verdict, health and expression value.
    pub assertions: Vec<AssertionDump>,
    /// Violations detected so far, in detection order.
    pub violations: Vec<Violation>,
}

/// A steppable, checkpointing, time-travelling debug run.
#[derive(Debug)]
pub struct DebugSession {
    spec: DebugSpec,
    session: SimSession,
    stack: AdStack,
    injector: MultiInjector,
    checker: OnlineChecker,
    interval: u64,
    checkpoints: Vec<SimCheckpoint>,
}

impl DebugSession {
    /// Opens a session over `spec`, capturing a checkpoint every
    /// `interval` cycles (the initial state is always checkpoint 0). The
    /// catalog is the campaign's standard catalog for the scenario.
    ///
    /// # Errors
    ///
    /// [`DebugError::BadSpec`] for a zero interval and
    /// [`DebugError::Sim`] for an invalid scenario.
    pub fn new(spec: &DebugSpec, interval: u64) -> Result<Self, DebugError> {
        if interval == 0 {
            return Err(DebugError::BadSpec(
                "checkpoint interval must be at least 1 cycle".into(),
            ));
        }
        let scenario = Scenario::of_kind(spec.scenario)?;
        let catalog = standard_catalog(&scenario);
        Self::with_catalog(spec, interval, &scenario, catalog)
    }

    /// [`DebugSession::new`] with an explicit catalog (ablation debugging).
    ///
    /// # Errors
    ///
    /// [`DebugError::Sim`] for an invalid scenario configuration.
    pub fn with_catalog(
        spec: &DebugSpec,
        interval: u64,
        scenario: &Scenario,
        catalog: Vec<Assertion>,
    ) -> Result<Self, DebugError> {
        let config = run::stack_config(scenario, spec.controller).with_estimator(spec.estimator);
        let stack = AdStack::new(config, scenario.track.clone());
        let engine = run::engine_for(scenario, spec.seed);
        let session = engine.session()?;
        let injector = spec.timeline.injector(spec.seed);
        let checker = OnlineChecker::new(catalog);
        let mut this = DebugSession {
            spec: spec.clone(),
            session,
            stack,
            injector,
            checker,
            interval,
            checkpoints: Vec::new(),
        };
        let initial = this.capture();
        this.checkpoints.push(initial);
        Ok(this)
    }

    /// The session's spec.
    pub fn spec(&self) -> &DebugSpec {
        &self.spec
    }

    /// Completed cycles so far.
    pub fn cycle(&self) -> u64 {
        self.session.steps() as u64
    }

    /// Whether the run has ended.
    pub fn is_done(&self) -> bool {
        self.session.is_done()
    }

    /// The checkpoints captured so far, in cycle order.
    pub fn checkpoints(&self) -> &[SimCheckpoint] {
        &self.checkpoints
    }

    /// Violations detected so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        self.checker.violations()
    }

    /// Runs one cycle (sense → attack → control → actuate → integrate)
    /// and feeds the cycle's recorded samples to the online checker.
    /// Returns `Ok(false)` once the run is over (nothing was executed).
    ///
    /// # Errors
    ///
    /// [`DebugError::Sim`] on numerical divergence; [`DebugError::Checker`]
    /// if the replay loop produced a non-monotone cycle (a bug).
    pub fn step(&mut self) -> Result<bool, DebugError> {
        if self.session.is_done() {
            return Ok(false);
        }
        let t = self.session.time();
        if !self.session.step(&mut self.stack, &mut self.injector)? {
            return Ok(false);
        }
        // Feed the checker this cycle's samples: every signal recorded at
        // timestamp t, in name-sorted order — exactly the stream
        // `checker::for_each_cycle` reconstructs offline, so live and
        // offline verdicts agree cycle for cycle.
        self.checker
            .begin_cycle(t)
            .map_err(|e| DebugError::Checker(format!("cycle at t={t}: {e}")))?;
        let mut updates: Vec<(SignalId, f64)> = Vec::with_capacity(32);
        for series in self.session.trace().iter() {
            if let Some(sample) = series.last() {
                if sample.time == t {
                    updates.push((series.id().clone(), sample.value));
                }
            }
        }
        for (id, value) in updates {
            self.checker.update(id, value);
        }
        self.checker.end_cycle();
        if self.cycle().is_multiple_of(self.interval) {
            let cp = self.capture();
            self.checkpoints.push(cp);
        }
        Ok(true)
    }

    /// Runs to the end of the run.
    ///
    /// # Errors
    ///
    /// See [`DebugSession::step`].
    pub fn run_to_end(&mut self) -> Result<(), DebugError> {
        while self.step()? {}
        Ok(())
    }

    /// Time travel: positions the session exactly at `cycle` completed
    /// cycles. Backward jumps restore the nearest checkpoint at or before
    /// the target and fast-forward deterministically; forward jumps just
    /// step.
    ///
    /// # Errors
    ///
    /// [`DebugError::BadSpec`] when the run ends before `cycle`;
    /// restore/step errors as in [`DebugSession::step`].
    pub fn run_to(&mut self, cycle: u64) -> Result<(), DebugError> {
        if cycle < self.cycle() {
            let nearest = self
                .checkpoints
                .iter()
                .rev()
                .find(|cp| cp.cycle <= cycle)
                .cloned()
                .ok_or_else(|| {
                    DebugError::Restore(format!("no checkpoint at or before cycle {cycle}"))
                })?;
            self.restore_checkpoint(&nearest)?;
        }
        while self.cycle() < cycle {
            if !self.step()? {
                return Err(DebugError::BadSpec(format!(
                    "run ended at cycle {} before reaching cycle {cycle}",
                    self.cycle()
                )));
            }
        }
        Ok(())
    }

    /// Captures the complete current state as a checkpoint (engine loop,
    /// injectors, checker, stack).
    pub fn capture(&self) -> SimCheckpoint {
        SimCheckpoint {
            cycle: self.cycle(),
            sim: self.session.snapshot(),
            injectors: self.injector.state(),
            checker: self.checker.save_state(),
            driver: DriverState::Stack(Box::new(self.stack.save_state())),
        }
    }

    /// Reinstates a checkpoint captured from a session over the same
    /// spec. Stepping on from here is bit-identical to the uninterrupted
    /// run.
    ///
    /// # Errors
    ///
    /// [`DebugError::Restore`] when the checkpoint's stack, injector or
    /// checker shape does not match this session.
    pub fn restore_checkpoint(&mut self, cp: &SimCheckpoint) -> Result<(), DebugError> {
        let stack_state = match &cp.driver {
            DriverState::Stack(s) => s,
            DriverState::Guardian(_) => {
                return Err(DebugError::Restore(
                    "checkpoint was captured from a guardian-driven run; \
                     this session drives a bare stack"
                        .into(),
                ))
            }
        };
        self.stack
            .restore_state(stack_state)
            .map_err(DebugError::Restore)?;
        self.injector
            .restore(&cp.injectors)
            .map_err(DebugError::Restore)?;
        self.checker = OnlineChecker::restore(
            self.checker.plan().clone(),
            HealthConfig::default(),
            cp.checker.clone(),
        )
        .map_err(|e| DebugError::Restore(format!("checker: {e}")))?;
        self.session.restore(&cp.sim);
        Ok(())
    }

    /// Dumps everything visible at the current pause point: signals,
    /// per-assertion verdicts/health and compiled-expression values, and
    /// the violations so far.
    ///
    /// Expression values are recomputed by replaying the recorded trace
    /// through [`checker::replay`], so they carry the exact online
    /// evaluation semantics (derivative windows, staleness, angle
    /// wrapping) at the paused cycle.
    pub fn inspect(&self) -> StateDump {
        let trace = self.session.trace();
        let monitors = self.checker.plan().clone();
        let mut values: Vec<Option<f64>> = vec![None; monitors.monitors().len()];
        checker::replay(trace, |_t, env| {
            for (slot, m) in monitors.monitors().iter().enumerate() {
                values[slot] = condition_value(&m.assertion().condition, env);
            }
        });
        let state = self.checker.save_state();
        let assertions = monitors
            .monitors()
            .iter()
            .zip(&state.monitors)
            .zip(values)
            .map(|((m, snap), value)| AssertionDump {
                id: m.assertion().id.as_str().to_owned(),
                description: m.assertion().description.clone(),
                verdict: snap.last_verdict,
                health: snap.health,
                value,
            })
            .collect();
        let signals = trace
            .iter()
            .filter_map(|series| {
                series.last().map(|sample| SignalValue {
                    name: series.id().as_str().to_owned(),
                    time: sample.time,
                    value: sample.value,
                })
            })
            .collect();
        StateDump {
            cycle: self.cycle(),
            time: trace.span().map_or(0.0, |(_, b)| b),
            vehicle: *self.session.state(),
            signals,
            assertions,
            violations: self.checker.violations().to_vec(),
        }
    }

    /// Closes the session into the run output and final report, stamped
    /// with the spec's context. The report is identical to what
    /// `adassure_core::checker::check` computes offline over the same
    /// trace (and therefore to the campaign's for a one-attack timeline).
    pub fn finish(self) -> (SimOutput, CheckReport) {
        let context = self.spec.context();
        let output = self.session.finish();
        let end = output.trace.span().map_or(0.0, |(_, b)| b);
        let mut report = self.checker.finish(end);
        report.context = Some(context);
        (output, report)
    }
}

/// The value the online monitor evaluates for a condition: the compiled
/// expression for bounds, the observed staleness for freshness.
fn condition_value(condition: &Condition, env: &Env) -> Option<f64> {
    match condition {
        Condition::AtMost { expr, .. } | Condition::AtLeast { expr, .. } => expr.eval(env),
        Condition::Fresh { signal, .. } => env.age(signal),
    }
}
