//! End-to-end differential over the full columnar pipeline: traces
//! exported to CSV, re-imported, converted to [`ColumnarTrace`],
//! round-tripped through the `.adt` binary encoding and checked by the
//! lane-batched engine must produce reports byte-identical (as JSON) to
//! the scalar per-trace replay over the original in-memory traces.
//!
//! This is the integration-level counterpart of the property test in
//! `adassure-core/tests/proptests.rs`: instead of synthetic generators it
//! exercises the exact artefact flows a campaign uses — the CSV
//! interchange leg `trace-import` consumes, and the `.adt` corpus leg
//! `check_columnar_traces` consumes.

use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_exp::campaign::{execute, standard_catalog};
use adassure_exp::grid::RunSpec;
use adassure_exp::{check_columnar_traces, check_traces_scalar};
use adassure_scenarios::{Scenario, ScenarioKind};
use adassure_trace::{csv, well_known, ColumnarTrace, Trace};

fn assert_reports_match(
    lane_reports: &[adassure_core::CheckReport],
    scalar_reports: &[adassure_core::CheckReport],
) {
    assert_eq!(lane_reports.len(), scalar_reports.len());
    for (i, (lane, scalar)) in lane_reports.iter().zip(scalar_reports).enumerate() {
        let lane_json = serde_json::to_string(lane).expect("serialize");
        let scalar_json = serde_json::to_string(scalar).expect("serialize");
        assert_eq!(
            lane_json, scalar_json,
            "trace {i}: columnar pipeline diverged from scalar replay"
        );
    }
}

/// CSV leg: the interchange format carries cycle-aligned tables (every
/// signal sampled every cycle — a controller-log shape), so this leg uses
/// seeded synthetic tables over the well-known signal set. Ten traces span
/// two lane groups, and the xorshift wobble trips some catalog bounds so
/// the compared reports contain real violations.
#[test]
fn csv_adt_lane_pipeline_matches_scalar_replay() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).expect("scenario");
    let cat = standard_catalog(&scenario);

    let traces: Vec<Trace> = (1..=10u64)
        .map(|seed| {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut trace = Trace::new();
            for i in 0..400u32 {
                let t = f64::from(i) * 0.01;
                for (j, name) in well_known::ALL.iter().enumerate() {
                    let wobble = 0.4 * rng() - 0.2;
                    let value = 0.05 * f64::from(i).sin() + 0.01 * j as f64 + wobble;
                    trace.record(*name, t, value);
                }
            }
            trace
        })
        .collect();

    let columnar: Vec<ColumnarTrace> = traces
        .iter()
        .map(|t| {
            let text = csv::to_csv(t).expect("csv export");
            let reimported = csv::from_csv(&text).expect("csv import");
            let bytes = ColumnarTrace::from_trace(&reimported).encode();
            ColumnarTrace::decode(&bytes).expect("adt decode")
        })
        .collect();

    assert_reports_match(
        &check_columnar_traces(&cat, &columnar),
        &check_traces_scalar(&cat, &traces),
    );
}

/// `.adt` leg: real simulator traces (multi-rate — GNSS and wheel series
/// are sparse relative to the controller cycle, so they cannot take the
/// CSV leg) round-tripped through the binary encoding.
#[test]
fn sim_traces_through_adt_match_scalar_replay() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).expect("scenario");
    let cat = standard_catalog(&scenario);

    let traces: Vec<Trace> = (1..=3u64)
        .map(|seed| {
            let spec = RunSpec {
                index: 0,
                scenario: scenario.kind,
                controller: ControllerKind::PurePursuit,
                estimator: EstimatorKind::Complementary,
                attack: None,
                seed,
            };
            let (out, _) = execute(&spec, &cat).expect("simulation runs");
            out.trace
        })
        .collect();

    let columnar: Vec<ColumnarTrace> = traces
        .iter()
        .map(|t| {
            let bytes = ColumnarTrace::from_trace(t).encode();
            ColumnarTrace::decode(&bytes).expect("adt decode")
        })
        .collect();

    assert_reports_match(
        &check_columnar_traces(&cat, &columnar),
        &check_traces_scalar(&cat, &traces),
    );
}
