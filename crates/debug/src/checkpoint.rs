//! Versioned binary checkpoints of a mid-run simulation (`ADSIM`).
//!
//! A [`SimCheckpoint`] captures everything mutable between two control
//! cycles — the engine loop ([`SimSnapshot`], including the trace so
//! far), the controller stack, every attack injector, the online checker
//! and (for guardian-driven runs) the guardian's mode machine — so a
//! restored run continues bit-identically to the uninterrupted one.
//!
//! The encoding reuses the workspace's shared codec helpers
//! ([`adassure_core::codec`]): little-endian integers, raw IEEE-754 float
//! bits (NaN sentinels like the LQR gain cache survive exactly),
//! `u16`-prefixed strings, count-validated sections and a typed
//! [`CodecError`] surface. The checker section is the *same* encoding the
//! fleet `ADCKPT` format uses, via [`codec::put_checker`] /
//! [`codec::read_checker`].

use adassure::guardian::{GuardState, GuardianState};
use adassure_attacks::{FaultChannelState, FaultInjectorState, InjectorState};
use adassure_control::ekf::EkfState;
use adassure_control::estimator::EstimatorState;
use adassure_control::lqr::LqrState;
use adassure_control::mpc::MpcState;
use adassure_control::pid::PidState;
use adassure_control::pipeline::{AnyEstimatorState, LateralState, StackState};
use adassure_core::codec::{self, CodecError, Cur};
use adassure_core::CheckerState;
use adassure_sim::engine::SimSnapshot;
use adassure_sim::geometry::Vec2;
use adassure_sim::vehicle::VehicleState;
use adassure_trace::ColumnarTrace;

/// File magic of a sim debug checkpoint.
pub const MAGIC: &[u8; 5] = b"ADSIM";
/// Current format version.
pub const VERSION: u16 = 1;

/// The driver half of a checkpoint: whichever control loop was producing
/// commands when the snapshot was taken.
#[derive(Debug, Clone)]
pub enum DriverState {
    /// A bare control stack (the campaign configuration).
    Stack(Box<StackState>),
    /// A guardian-wrapped stack with its in-loop checkers and mode
    /// machine.
    Guardian(Box<GuardianState>),
}

/// A complete mid-run state capture, taken between two control cycles.
#[derive(Debug, Clone)]
pub struct SimCheckpoint {
    /// Completed cycles at capture time (the index of the next cycle).
    pub cycle: u64,
    /// The engine loop's state, including the trace recorded so far.
    pub sim: SimSnapshot,
    /// Per-entry attack injector states, in timeline order.
    pub injectors: Vec<InjectorState>,
    /// The online checker's state.
    pub checker: CheckerState,
    /// The driver's state.
    pub driver: DriverState,
}

impl SimCheckpoint {
    /// Serializes the checkpoint as a versioned `ADSIM` binary image.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.cycle.to_le_bytes());
        put_sim(&mut out, &self.sim);
        codec::put_count(&mut out, self.injectors.len());
        for inj in &self.injectors {
            put_injector(&mut out, inj);
        }
        codec::put_checker(&mut out, &self.checker);
        match &self.driver {
            DriverState::Stack(s) => {
                out.push(0);
                put_stack(&mut out, s);
            }
            DriverState::Guardian(g) => {
                out.push(1);
                put_guardian(&mut out, g);
            }
        }
        out
    }

    /// Parses an `ADSIM` image back into a checkpoint.
    ///
    /// # Errors
    ///
    /// [`CodecError::Malformed`] for truncation, bad magic or invalid
    /// tags; [`CodecError::Incompatible`] for an unknown version.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut c = Cur::new(bytes);
        if c.take(MAGIC.len(), "magic")? != MAGIC {
            return Err(Cur::bad("not an ADSIM checkpoint (bad magic)"));
        }
        let version = c.u16("version")?;
        if version != VERSION {
            return Err(CodecError::incompatible(format!(
                "ADSIM version {version} (this build reads {VERSION})"
            )));
        }
        let cycle = c.u64("cycle")?;
        let sim = read_sim(&mut c)?;
        let injector_count = c.count("injector count")?;
        let mut injectors = Vec::with_capacity(injector_count);
        for _ in 0..injector_count {
            injectors.push(read_injector(&mut c)?);
        }
        let checker = codec::read_checker(&mut c)?;
        let driver = match c.u8("driver tag")? {
            0 => DriverState::Stack(Box::new(read_stack(&mut c)?)),
            1 => DriverState::Guardian(Box::new(read_guardian(&mut c)?)),
            other => return Err(Cur::bad(format!("invalid driver tag {other}"))),
        };
        c.expect_end()?;
        Ok(SimCheckpoint {
            cycle,
            sim,
            injectors,
            checker,
            driver,
        })
    }
}

// ---------------------------------------------------------------------------
// Small shared pieces
// ---------------------------------------------------------------------------

fn put_vec2(out: &mut Vec<u8>, v: Vec2) {
    out.extend_from_slice(&v.x.to_le_bytes());
    out.extend_from_slice(&v.y.to_le_bytes());
}

fn read_vec2(c: &mut Cur<'_>, what: &str) -> Result<Vec2, CodecError> {
    Ok(Vec2 {
        x: c.f64(what)?,
        y: c.f64(what)?,
    })
}

fn put_rng(out: &mut Vec<u8>, rng: &[u64; 4]) {
    for &w in rng {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn read_rng(c: &mut Cur<'_>, what: &str) -> Result<[u64; 4], CodecError> {
    Ok([c.u64(what)?, c.u64(what)?, c.u64(what)?, c.u64(what)?])
}

fn put_time_fix_list(out: &mut Vec<u8>, list: &[(f64, Vec2)]) {
    codec::put_count(out, list.len());
    for &(t, p) in list {
        out.extend_from_slice(&t.to_le_bytes());
        put_vec2(out, p);
    }
}

fn read_time_fix_list(c: &mut Cur<'_>, what: &str) -> Result<Vec<(f64, Vec2)>, CodecError> {
    let n = c.count(what)?;
    let mut list = Vec::with_capacity(n);
    for _ in 0..n {
        list.push((c.f64(what)?, read_vec2(c, what)?));
    }
    Ok(list)
}

// ---------------------------------------------------------------------------
// Engine loop
// ---------------------------------------------------------------------------

fn put_sim(out: &mut Vec<u8>, s: &SimSnapshot) {
    put_rng(out, &s.rng);
    out.extend_from_slice(&s.sensor_cycle.to_le_bytes());
    out.extend_from_slice(&s.steering.to_le_bytes());
    out.extend_from_slice(&s.drivetrain.to_le_bytes());
    put_vec2(out, s.state.position);
    for v in [
        s.state.heading,
        s.state.speed,
        s.state.lateral_speed,
        s.state.yaw_rate,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    match s.last_fix {
        Some((t, p)) => {
            out.push(1);
            out.extend_from_slice(&t.to_le_bytes());
            put_vec2(out, p);
        }
        None => out.push(0),
    }
    put_time_fix_list(out, &s.fix_history);
    codec::put_count(out, s.wheel_history.len());
    for &(t, v) in &s.wheel_history {
        out.extend_from_slice(&t.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&s.wheel_jitter.to_le_bytes());
    codec::put_opt_f64(out, s.last_wheel);
    out.extend_from_slice(&s.actual_accel.to_le_bytes());
    out.extend_from_slice(&s.true_progress.to_le_bytes());
    out.extend_from_slice(&s.last_station.to_le_bytes());
    out.push(u8::from(s.reached_goal));
    out.extend_from_slice(&s.steps.to_le_bytes());
    // The trace rides along as a length-prefixed columnar image, so the
    // restored session appends to byte-identical history.
    let trace = ColumnarTrace::from_trace(&s.trace).encode();
    codec::put_count(out, trace.len());
    out.extend_from_slice(&trace);
}

fn read_sim(c: &mut Cur<'_>) -> Result<SimSnapshot, CodecError> {
    let rng = read_rng(c, "sim rng")?;
    let sensor_cycle = c.u64("sensor cycle")?;
    let steering = c.f64("steering actuator")?;
    let drivetrain = c.f64("drivetrain actuator")?;
    let state = VehicleState {
        position: read_vec2(c, "vehicle position")?,
        heading: c.f64("vehicle heading")?,
        speed: c.f64("vehicle speed")?,
        lateral_speed: c.f64("vehicle lateral speed")?,
        yaw_rate: c.f64("vehicle yaw rate")?,
    };
    let last_fix = if c.bool("last fix flag")? {
        Some((c.f64("last fix time")?, read_vec2(c, "last fix")?))
    } else {
        None
    };
    let fix_history = read_time_fix_list(c, "fix history")?;
    let wheel_count = c.count("wheel history")?;
    let mut wheel_history = Vec::with_capacity(wheel_count);
    for _ in 0..wheel_count {
        wheel_history.push((c.f64("wheel history")?, c.f64("wheel history")?));
    }
    let wheel_jitter = c.f64("wheel jitter")?;
    let last_wheel = c.opt_f64("last wheel")?;
    let actual_accel = c.f64("actual accel")?;
    let true_progress = c.f64("true progress")?;
    let last_station = c.f64("last station")?;
    let reached_goal = c.bool("reached goal")?;
    let steps = c.u64("sim steps")?;
    let trace_len = c.count("trace length")?;
    let trace_bytes = c.take(trace_len, "trace image")?;
    let trace = ColumnarTrace::decode(trace_bytes)
        .map_err(|e| Cur::bad(format!("embedded trace: {e}")))?
        .to_trace();
    Ok(SimSnapshot {
        rng,
        sensor_cycle,
        steering,
        drivetrain,
        state,
        last_fix,
        fix_history,
        wheel_history,
        wheel_jitter,
        last_wheel,
        actual_accel,
        true_progress,
        last_station,
        reached_goal,
        steps,
        trace,
    })
}

// ---------------------------------------------------------------------------
// Attack injectors
// ---------------------------------------------------------------------------

fn put_injector(out: &mut Vec<u8>, s: &InjectorState) {
    put_rng(out, &s.rng);
    match s.frozen_fix {
        Some(p) => {
            out.push(1);
            put_vec2(out, p);
        }
        None => out.push(0),
    }
    codec::put_opt_f64(out, s.frozen_speed);
    put_time_fix_list(out, &s.delay_buffer);
}

fn read_injector(c: &mut Cur<'_>) -> Result<InjectorState, CodecError> {
    let rng = read_rng(c, "injector rng")?;
    let frozen_fix = if c.bool("frozen fix flag")? {
        Some(read_vec2(c, "frozen fix")?)
    } else {
        None
    };
    let frozen_speed = c.opt_f64("frozen speed")?;
    let delay_buffer = read_time_fix_list(c, "delay buffer")?;
    Ok(InjectorState {
        rng,
        frozen_fix,
        frozen_speed,
        delay_buffer,
    })
}

// ---------------------------------------------------------------------------
// Controller stack
// ---------------------------------------------------------------------------

fn put_stack(out: &mut Vec<u8>, s: &StackState) {
    match &s.estimator {
        AnyEstimatorState::Complementary(e) => {
            out.push(0);
            put_vec2(out, e.position);
            for v in [e.heading, e.speed] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.push(u8::from(e.initialized));
            out.extend_from_slice(&e.last_innovation.to_le_bytes());
        }
        AnyEstimatorState::Ekf(e) => {
            out.push(1);
            for v in e.state {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for row in e.covariance {
                for v in row {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            out.push(u8::from(e.initialized));
            out.extend_from_slice(&e.last_innovation.to_le_bytes());
            out.extend_from_slice(&e.rejected_fixes.to_le_bytes());
        }
    }
    match &s.lateral {
        LateralState::Stateless => out.push(0),
        LateralState::Lqr(l) => {
            out.push(1);
            // Raw bits: cached_speed uses NaN as the never-solved sentinel.
            out.extend_from_slice(&l.cached_speed.to_le_bytes());
            for v in l.gains {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        LateralState::Mpc(m) => {
            out.push(2);
            codec::put_count(out, m.plan.len());
            for &v in &m.plan {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&m.cycles_since_plan.to_le_bytes());
            out.extend_from_slice(&m.last_command.to_le_bytes());
        }
    }
    out.extend_from_slice(&s.pid.integral.to_le_bytes());
    codec::put_opt_f64(out, s.pid.last_error);
    out.extend_from_slice(&s.progress.to_le_bytes());
    codec::put_opt_f64(out, s.last_station);
}

fn read_stack(c: &mut Cur<'_>) -> Result<StackState, CodecError> {
    let estimator = match c.u8("estimator tag")? {
        0 => AnyEstimatorState::Complementary(EstimatorState {
            position: read_vec2(c, "estimator position")?,
            heading: c.f64("estimator heading")?,
            speed: c.f64("estimator speed")?,
            initialized: c.bool("estimator initialized")?,
            last_innovation: c.f64("estimator innovation")?,
        }),
        1 => {
            let mut state = [0.0; 4];
            for v in &mut state {
                *v = c.f64("ekf state")?;
            }
            let mut covariance = [[0.0; 4]; 4];
            for row in &mut covariance {
                for v in row.iter_mut() {
                    *v = c.f64("ekf covariance")?;
                }
            }
            AnyEstimatorState::Ekf(EkfState {
                state,
                covariance,
                initialized: c.bool("ekf initialized")?,
                last_innovation: c.f64("ekf innovation")?,
                rejected_fixes: c.u64("ekf rejected fixes")?,
            })
        }
        other => return Err(Cur::bad(format!("invalid estimator tag {other}"))),
    };
    let lateral = match c.u8("lateral tag")? {
        0 => LateralState::Stateless,
        1 => {
            let cached_speed = c.f64("lqr cached speed")?;
            let gains = [c.f64("lqr gain")?, c.f64("lqr gain")?];
            LateralState::Lqr(LqrState {
                cached_speed,
                gains,
            })
        }
        2 => {
            let n = c.count("mpc plan")?;
            let mut plan = Vec::with_capacity(n);
            for _ in 0..n {
                plan.push(c.f64("mpc plan")?);
            }
            LateralState::Mpc(MpcState {
                plan,
                cycles_since_plan: c.u64("mpc cycles since plan")?,
                last_command: c.f64("mpc last command")?,
            })
        }
        other => return Err(Cur::bad(format!("invalid lateral tag {other}"))),
    };
    let pid = PidState {
        integral: c.f64("pid integral")?,
        last_error: c.opt_f64("pid last error")?,
    };
    let progress = c.f64("stack progress")?;
    let last_station = c.opt_f64("stack last station")?;
    Ok(StackState {
        estimator,
        lateral,
        pid,
        progress,
        last_station,
    })
}

// ---------------------------------------------------------------------------
// Guardian
// ---------------------------------------------------------------------------

fn put_guardian(out: &mut Vec<u8>, g: &GuardianState) {
    put_stack(out, &g.stack);
    codec::put_checker(out, &g.primary);
    codec::put_checker(out, &g.widened);
    match g.state {
        GuardState::Nominal => out.push(0),
        GuardState::Degraded { since } => {
            out.push(1);
            out.extend_from_slice(&since.to_le_bytes());
        }
        GuardState::SafeStop { since, held_steer } => {
            out.push(2);
            out.extend_from_slice(&since.to_le_bytes());
            out.extend_from_slice(&held_steer.to_le_bytes());
        }
    }
    match &g.trigger {
        Some(v) => {
            out.push(1);
            codec::put_violation(out, v);
        }
        None => out.push(0),
    }
    out.extend_from_slice(&g.clean_streak.to_le_bytes());
    out.extend_from_slice(&g.degraded_cycles.to_le_bytes());
    match &g.fault {
        Some(f) => {
            out.push(1);
            put_fault(out, f);
        }
        None => out.push(0),
    }
    codec::put_grid(out, &g.guard_grid);
    out.extend_from_slice(&g.events_emitted.to_le_bytes());
}

fn read_guardian(c: &mut Cur<'_>) -> Result<GuardianState, CodecError> {
    let stack = read_stack(c)?;
    let primary = codec::read_checker(c)?;
    let widened = codec::read_checker(c)?;
    let state = match c.u8("guard state tag")? {
        0 => GuardState::Nominal,
        1 => GuardState::Degraded {
            since: c.f64("degraded since")?,
        },
        2 => GuardState::SafeStop {
            since: c.f64("safe stop since")?,
            held_steer: c.f64("held steer")?,
        },
        other => return Err(Cur::bad(format!("invalid guard state tag {other}"))),
    };
    let trigger = if c.bool("trigger flag")? {
        Some(codec::read_violation(c)?)
    } else {
        None
    };
    let clean_streak = c.u32("clean streak")?;
    let degraded_cycles = c.u64("degraded cycles")?;
    let fault = if c.bool("fault flag")? {
        Some(read_fault(c)?)
    } else {
        None
    };
    let guard_grid = c.grid("guard grid")?;
    let events_emitted = c.u64("guardian events")?;
    Ok(GuardianState {
        stack,
        primary,
        widened,
        state,
        trigger,
        clean_streak,
        degraded_cycles,
        fault,
        guard_grid,
        events_emitted,
    })
}

fn put_fault(out: &mut Vec<u8>, f: &FaultInjectorState) {
    put_rng(out, &f.rng);
    codec::put_count(out, f.channels.len());
    for ch in &f.channels {
        codec::put_u16_str(out, &ch.channel);
        codec::put_opt_f64(out, ch.last_delivered);
        codec::put_opt_f64(out, ch.pending);
        out.push(ch.burst_left);
    }
    out.extend_from_slice(&f.offered.to_le_bytes());
    out.extend_from_slice(&f.dropped.to_le_bytes());
    out.extend_from_slice(&f.corrupted.to_le_bytes());
}

fn read_fault(c: &mut Cur<'_>) -> Result<FaultInjectorState, CodecError> {
    let rng = read_rng(c, "fault rng")?;
    let n = c.count("fault channels")?;
    let mut channels = Vec::with_capacity(n);
    for _ in 0..n {
        channels.push(FaultChannelState {
            channel: c.str16("fault channel name")?,
            last_delivered: c.opt_f64("fault last delivered")?,
            pending: c.opt_f64("fault pending")?,
            burst_left: c.u8("fault burst")?,
        });
    }
    Ok(FaultInjectorState {
        rng,
        channels,
        offered: c.u64("fault offered")?,
        dropped: c.u64("fault dropped")?,
        corrupted: c.u64("fault corrupted")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_core::online::{HealthState, OnlineChecker};

    fn sample_checker_state() -> CheckerState {
        let catalog =
            adassure_core::catalog::build(&adassure_core::catalog::CatalogConfig::default());
        let mut checker = OnlineChecker::new(catalog);
        checker.begin_cycle(0.0).expect("first cycle");
        checker.update("true_speed", 5.0);
        checker.end_cycle();
        checker.save_state()
    }

    fn sample_checkpoint() -> SimCheckpoint {
        let mut trace = adassure_trace::Trace::new();
        trace.record("x", 0.0, 1.0);
        trace.record("x", 0.01, f64::NAN);
        SimCheckpoint {
            cycle: 2,
            sim: SimSnapshot {
                rng: [1, 2, 3, 4],
                sensor_cycle: 2,
                steering: 0.02,
                drivetrain: 0.5,
                state: VehicleState {
                    position: Vec2 { x: 1.0, y: -2.0 },
                    heading: 0.3,
                    speed: 4.0,
                    lateral_speed: 0.0,
                    yaw_rate: 0.01,
                },
                last_fix: Some((0.0, Vec2 { x: 1.1, y: -2.2 })),
                fix_history: vec![(0.0, Vec2 { x: 1.1, y: -2.2 })],
                wheel_history: vec![(0.0, 3.9), (0.01, 4.0)],
                wheel_jitter: 0.05,
                last_wheel: Some(4.0),
                actual_accel: 0.7,
                true_progress: 3.0,
                last_station: 3.1,
                reached_goal: false,
                steps: 2,
                trace,
            },
            injectors: vec![InjectorState {
                rng: [9, 8, 7, 6],
                frozen_fix: None,
                frozen_speed: Some(4.0),
                delay_buffer: vec![(0.0, Vec2 { x: 0.0, y: 0.0 })],
            }],
            checker: sample_checker_state(),
            driver: DriverState::Stack(Box::new(StackState {
                estimator: AnyEstimatorState::Complementary(EstimatorState {
                    position: Vec2 { x: 1.0, y: -2.0 },
                    heading: 0.3,
                    speed: 4.0,
                    initialized: true,
                    last_innovation: 0.2,
                }),
                lateral: LateralState::Lqr(LqrState {
                    cached_speed: f64::NAN,
                    gains: [0.0, 0.0],
                }),
                pid: PidState {
                    integral: 0.4,
                    last_error: Some(-0.1),
                },
                progress: 3.0,
                last_station: Some(3.1),
            })),
        }
    }

    #[test]
    fn checkpoint_round_trips_byte_identically() {
        let cp = sample_checkpoint();
        let bytes = cp.encode();
        let back = SimCheckpoint::decode(&bytes).expect("decodes");
        // SimSnapshot has no PartialEq (it embeds a Trace clone), so the
        // round-trip is asserted on the re-encoded bytes: decode must be a
        // lossless inverse of encode, NaN bit patterns included.
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.cycle, 2);
        assert!(matches!(
            &back.driver,
            DriverState::Stack(s) if matches!(
                s.lateral,
                LateralState::Lqr(LqrState { cached_speed, .. }) if cached_speed.is_nan()
            )
        ));
    }

    #[test]
    fn guardian_checkpoints_round_trip() {
        let base = sample_checkpoint();
        let stack = match base.driver.clone() {
            DriverState::Stack(s) => *s,
            DriverState::Guardian(_) => unreachable!(),
        };
        let cp = SimCheckpoint {
            driver: DriverState::Guardian(Box::new(GuardianState {
                stack,
                primary: sample_checker_state(),
                widened: sample_checker_state(),
                state: GuardState::SafeStop {
                    since: 12.5,
                    held_steer: -0.04,
                },
                trigger: None,
                clean_streak: 3,
                degraded_cycles: 120,
                fault: Some(FaultInjectorState {
                    rng: [5, 5, 5, 5],
                    channels: vec![FaultChannelState {
                        channel: "wheel_speed".into(),
                        last_delivered: Some(4.0),
                        pending: None,
                        burst_left: 2,
                    }],
                    offered: 100,
                    dropped: 3,
                    corrupted: 7,
                }),
                guard_grid: [[1, 0, 0], [0, 2, 0], [0, 0, 3]],
                events_emitted: 4,
            })),
            ..base
        };
        let bytes = cp.encode();
        let back = SimCheckpoint::decode(&bytes).expect("decodes");
        assert_eq!(back.encode(), bytes);
        match back.driver {
            DriverState::Guardian(g) => {
                assert_eq!(
                    g.state,
                    GuardState::SafeStop {
                        since: 12.5,
                        held_steer: -0.04
                    }
                );
                assert_eq!(g.fault.as_ref().map(|f| f.channels.len()), Some(1));
            }
            DriverState::Stack(_) => panic!("guardian driver expected"),
        }
    }

    #[test]
    fn truncation_bad_magic_and_bad_version_are_typed() {
        let bytes = sample_checkpoint().encode();
        for cut in [0, 4, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    SimCheckpoint::decode(&bytes[..cut]),
                    Err(CodecError::Malformed { .. })
                ),
                "truncation at {cut} must be malformed"
            );
        }
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            SimCheckpoint::decode(&wrong_magic),
            Err(CodecError::Malformed { .. })
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[5] = 99;
        assert!(matches!(
            SimCheckpoint::decode(&wrong_version),
            Err(CodecError::Incompatible { .. })
        ));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(SimCheckpoint::decode(&trailing).is_err());
    }

    #[test]
    fn checker_section_preserves_monitor_health() {
        let cp = sample_checkpoint();
        let back = SimCheckpoint::decode(&cp.encode()).expect("decodes");
        assert_eq!(back.checker.monitors.len(), cp.checker.monitors.len());
        assert!(back
            .checker
            .monitors
            .iter()
            .all(|m| m.health == HealthState::Active));
    }
}
