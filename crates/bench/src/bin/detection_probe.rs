//! Development probe: one run per attack on the straight scenario, printing
//! fired assertions, detection latency and diagnosis. Not one of the paper
//! tables — use it to sanity-check catalog thresholds quickly.

use adassure_bench::{catalog_for, run_attacked, run_clean};
use adassure_control::ControllerKind;
use adassure_core::diagnosis;
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    for sk in [ScenarioKind::Straight, ScenarioKind::SCurve] {
        let scenario = Scenario::of_kind(sk).expect("library scenario");
        let cat = catalog_for(&scenario);
        println!("=== scenario {} (len {:.0} m) ===", sk, scenario.route_length());
        let (out, clean) = run_clean(&scenario, ControllerKind::PurePursuit, 1, &cat)
            .expect("clean run");
        println!(
            "clean: {} violations {:?}",
            clean.violations.len(),
            clean
                .violated_ids()
                .iter()
                .map(|i| i.as_str().to_owned())
                .collect::<Vec<_>>()
        );
        // Clean-envelope diagnostics for threshold calibration.
        let steer = out
            .trace
            .require(adassure_trace::well_known::STEER_CMD)
            .unwrap();
        let d = steer.differentiate();
        let max_rate = d
            .samples()
            .iter()
            .filter(|s| s.time > 8.0)
            .map(|s| s.value.abs())
            .fold(0.0f64, f64::max);
        let gs = out
            .trace
            .series_by_name(adassure_trace::well_known::GNSS_SPEED);
        let ws = out
            .trace
            .require(adassure_trace::well_known::WHEEL_SPEED)
            .unwrap();
        let max_gap = gs
            .map(|gs| {
                gs.samples()
                    .iter()
                    .filter(|s| s.time > 8.0)
                    .map(|s| (s.value - ws.value_at(s.time).unwrap_or(s.value)).abs())
                    .fold(0.0f64, f64::max)
            })
            .unwrap_or(0.0);
        println!("clean envelope: max|d steer/dt|={max_rate:.2} rad/s, max|gnss-wheel speed|={max_gap:.2} m/s");
        for attack in adassure_attacks::campaign::extended_attacks(scenario.attack_start) {
            let (_, report) = run_attacked(&scenario, ControllerKind::PurePursuit, &attack, 1, &cat)
                .expect("attacked run");
            let latency = report
                .detection_latency(attack.window.start)
                .map(|l| format!("{l:.2}s"))
                .unwrap_or_else(|| "MISS".to_owned());
            let ids: Vec<_> = report
                .violated_ids()
                .iter()
                .map(|i| i.as_str().to_owned())
                .collect();
            let diag = diagnosis::diagnose(&report);
            let top = diag
                .top()
                .map(|c| c.name().to_owned())
                .unwrap_or_else(|| "-".to_owned());
            println!(
                "{:<20} latency {:<7} top-cause {:<12} fired {:?}",
                attack.name(),
                latency,
                top,
                ids
            );
        }
    }
}
