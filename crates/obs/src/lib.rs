//! Observability for the ADAssure monitor: bounded-memory metrics, a
//! structured event log, and exporters.
//!
//! The checker, guardian and campaign engine compute rich state — verdicts,
//! health transitions, guardian mode changes, cycle latencies — and without
//! this crate they would throw it away, leaving the debugging methodology
//! itself undebuggable. This crate makes that state observable under three
//! hard constraints inherited from the monitor's design:
//!
//! 1. **Bounded memory, allocation-free steady state.** Every counter and
//!    histogram is sized at construction (fixed log₂ buckets, no `Vec`
//!    growth on the hot path), so the counting-allocator test in
//!    `crates/core/tests/alloc_steady_state.rs` passes with metrics *and*
//!    sinks enabled.
//! 2. **Observability never perturbs results.** Metrics and events are
//!    derived from monitor state, never fed back into it; the campaign
//!    differential test proves reports are bit-identical with the JSONL
//!    sink enabled vs [`NullSink`].
//! 3. **~Free when disabled.** Event emission is gated by a bitmask
//!    [`EventFilter`] checked before the event reaches a sink, and
//!    wall-clock timing is sampled every [`ObsConfig::timing_stride`]
//!    cycles, so the disabled configuration costs a predictable branch.
//!
//! The pieces:
//!
//! - [`hist::Histogram`] — HDR-style fixed log₂ buckets for latencies;
//! - [`event::Event`] — typed events (verdict flips, health transitions,
//!   guardian transitions, run boundaries) with an allocation-free inline
//!   [`Label`] instead of heap strings;
//! - [`sink::EventSink`] — where events go: [`NullSink`], [`VecSink`] or
//!   the line-buffered [`JsonlWriter`];
//! - [`metrics`] — per-assertion verdict counters, transition grids, and
//!   the serializable [`MetricsSnapshot`] / deterministic [`ObsSummary`]
//!   split (wall-clock data stays out of campaign reports so they remain
//!   reproducible);
//! - [`export`] — Prometheus text format and JSON snapshot exporters;
//! - [`config::ObsConfig`] — `ADASSURE_OBS` / `ADASSURE_OBS_PATH` env
//!   toggles mirroring `ADASSURE_THREADS`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod event;
pub mod export;
pub mod hist;
pub mod label;
pub mod metrics;
pub mod sink;

pub use config::{ObsConfig, OBS_ENV, OBS_PATH_ENV};
pub use event::{Event, EventFilter, EventKind, Guard, Health, Sev, Verdict};
pub use hist::Histogram;
pub use label::Label;
pub use metrics::{
    AssertionStats, MetricsSnapshot, ObsSummary, Transition, TransitionGrid, VerdictCounts,
};
pub use sink::{EventSink, JsonlWriter, NullSink, VecSink};
