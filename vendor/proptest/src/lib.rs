//! Offline vendored stand-in for `proptest`.
//!
//! Reimplements the subset of the proptest API this workspace uses:
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and string-pattern and tuple
//! strategies, [`collection::vec`], [`arbitrary::any`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`]
//! macros.
//!
//! Semantics are simplified: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name, so failures reproduce) and
//! failing cases are **not** shrunk — the assertion macros panic like
//! their `assert!` counterparts.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a plain test running the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let __strategies = ($($strat,)*);
                for __case in 0..__config.cases {
                    let _ = __case;
                    let ($($pat,)*) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; no
/// shrinking in this vendored stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Builds a strategy choosing uniformly among the given strategies (all must
/// share one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
