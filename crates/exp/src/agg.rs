//! Aggregation helpers shared by every experiment harness.
//!
//! All statistics here are over *samples* of runs, so spread is the sample
//! standard deviation (the `n - 1` denominator); a single observation has
//! zero spread by convention. Non-finite observations (NaN, ±inf) are
//! excluded before aggregating — a single poisoned sample must not wipe
//! out a whole table cell — so every statistic is over the finite
//! subsample and `None` means *no finite observation*.

use crate::record::RunRecord;

/// The finite subsample every aggregate is computed over.
fn finite(values: &[f64]) -> impl Iterator<Item = f64> + '_ {
    values.iter().copied().filter(|v| v.is_finite())
}

/// The arithmetic mean of the finite subsample; `None` when it is empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    let (sum, n) = finite(values).fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
    (n > 0).then(|| sum / n as f64)
}

/// The sample standard deviation (`n - 1` denominator) of the finite
/// subsample; `None` when it is empty and `0.0` for a single observation.
pub fn sample_std(values: &[f64]) -> Option<f64> {
    let mean = mean(values)?;
    let (sq, n) = finite(values).fold((0.0, 0usize), |(s, n), v| (s + (v - mean).powi(2), n + 1));
    if n < 2 {
        return Some(0.0);
    }
    Some((sq / (n - 1) as f64).sqrt())
}

/// Formats `mean ± std` for a sample of values; `-` when empty.
pub fn fmt_mean_std(values: &[f64]) -> String {
    match (mean(values), sample_std(values)) {
        (Some(mean), Some(std)) => format!("{mean:.2}±{std:.2}"),
        _ => "-".to_owned(),
    }
}

/// The `p`-th percentile (nearest-rank on the sorted finite subsample,
/// `p` in `[0, 100]`); `None` when no finite observation exists.
///
/// A `p` outside `[0, 100]` is a caller bug: it trips a debug assertion,
/// and in release builds is clamped into range. NaN samples previously
/// sorted *after* every finite value under `total_cmp`, so a single
/// poisoned latency silently became the reported `p95`; non-finite values
/// are now excluded before ranking.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    debug_assert!(
        (0.0..=100.0).contains(&p),
        "percentile rank out of range: {p}"
    );
    if !p.is_finite() {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let mut sorted: Vec<f64> = finite(values).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// The 95th-percentile of a sample (`None` when empty).
pub fn p95(values: &[f64]) -> Option<f64> {
    percentile(values, 95.0)
}

/// Counts `(detected, total)` over a set of run records.
pub fn detections<'a>(runs: impl IntoIterator<Item = &'a RunRecord>) -> (usize, usize) {
    let mut detected = 0;
    let mut total = 0;
    for run in runs {
        total += 1;
        detected += usize::from(run.detected);
    }
    (detected, total)
}

/// The fraction of runs detected (`0.0` for an empty set).
pub fn detection_rate<'a>(runs: impl IntoIterator<Item = &'a RunRecord>) -> f64 {
    let (detected, total) = detections(runs);
    if total == 0 {
        0.0
    } else {
        detected as f64 / total as f64
    }
}

/// The detection latencies of the detected runs, in iteration order.
pub fn latencies<'a>(runs: impl IntoIterator<Item = &'a RunRecord>) -> Vec<f64> {
    runs.into_iter()
        .filter_map(|run| run.detection_latency)
        .collect()
}

/// Counts `(hits, total)` of runs whose top-`k` diagnosis candidates
/// contain the attacked channel's true cause.
pub fn top_k_hits<'a>(runs: impl IntoIterator<Item = &'a RunRecord>, k: usize) -> (usize, usize) {
    let mut hits = 0;
    let mut total = 0;
    for run in runs {
        total += 1;
        hits += usize::from(run.diagnosis_in_top(k));
    }
    (hits, total)
}

/// Formats `hits/total` as a whole-number percentage (`-` when `total` is
/// zero).
pub fn percent(hits: usize, total: usize) -> String {
    if total == 0 {
        "-".to_owned()
    } else {
        format!("{}%", (100.0 * hits as f64 / total as f64).round() as u32)
    }
}

/// Formats a row of a fixed-width text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:<w$} "));
    }
    out.trim_end().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_sample_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[3.0]), Some(3.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(sample_std(&[]), None);
        // A single observation has no spread by convention.
        assert_eq!(sample_std(&[4.2]), Some(0.0));
        // Sample (not population) variance: [1, 3] → var 2, std √2.
        let std = sample_std(&[1.0, 3.0]).unwrap();
        assert!((std - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fmt_mean_std_formats() {
        assert_eq!(fmt_mean_std(&[]), "-");
        assert_eq!(fmt_mean_std(&[2.0, 2.0]), "2.00±0.00");
        assert_eq!(fmt_mean_std(&[1.0, 3.0]), "2.00±1.41");
    }

    #[test]
    fn percentiles_nearest_rank() {
        assert_eq!(p95(&[]), None);
        assert_eq!(p95(&[7.0]), Some(7.0));
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p95(&values), Some(95.0));
        assert_eq!(percentile(&values, 50.0), Some(50.0));
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        assert_eq!(percentile(&values, 100.0), Some(100.0));
    }

    #[test]
    fn percentiles_ignore_non_finite_samples() {
        // Regression: NaN sorts after every finite value under
        // `total_cmp`, so one poisoned sample used to *become* the p95.
        let mut values: Vec<f64> = (1..=100).map(f64::from).collect();
        values.push(f64::NAN);
        values.push(f64::INFINITY);
        values.push(f64::NEG_INFINITY);
        assert_eq!(p95(&values), Some(95.0));
        assert_eq!(percentile(&values, 100.0), Some(100.0));
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        // A sample with no finite observation has no percentile.
        assert_eq!(p95(&[f64::NAN, f64::INFINITY]), None);
    }

    #[test]
    fn non_finite_samples_do_not_skew_mean_or_std() {
        assert_eq!(mean(&[1.0, f64::NAN, 3.0]), Some(2.0));
        let std = sample_std(&[1.0, f64::INFINITY, 3.0]).unwrap();
        assert!((std - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[f64::NAN]), None);
        assert_eq!(sample_std(&[f64::NAN]), None);
        assert_eq!(fmt_mean_std(&[f64::NAN]), "-");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "percentile rank out of range")]
    fn out_of_range_percentile_is_a_debug_panic() {
        let _ = percentile(&[1.0, 2.0], 150.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "percentile rank out of range")]
    fn nan_percentile_rank_is_a_debug_panic() {
        let _ = percentile(&[1.0, 2.0], f64::NAN);
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0, 0), "-");
        assert_eq!(percent(2, 3), "67%");
        assert_eq!(percent(3, 3), "100%");
    }

    #[test]
    fn row_pads_fixed_width() {
        assert_eq!(row(&["a".into(), "bb".into()], &[3, 3]), "a   bb");
    }
}
