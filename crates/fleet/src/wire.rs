//! The binary ingest wire protocol: versioned, little-endian,
//! length-prefixed frames carrying sample batches from producers to the
//! fleet monitor.
//!
//! The format reuses the `.adt` encoding conventions from
//! `adassure-trace` — explicit magic/version/endianness markers, all
//! integers and floats little-endian, and a validating decoder that
//! returns typed [`WireError`]s instead of panicking on corrupt,
//! truncated or oversized input (see DESIGN.md §12 for the normative
//! spec).
//!
//! # Frame grammar
//!
//! ```text
//! frame := u32 body_len, body          body_len = 1 + payload length
//! body  := u8 frame_type, payload      body_len <= max_frame_len
//! ```
//!
//! Client → server frames (every one after [`Frame::Hello`] carries a
//! `u64` sequence number; the server requires the next expected sequence
//! and answers each with one [`Frame::Ack`] or [`Frame::Nack`]):
//!
//! | type | frame | payload |
//! |------|-------|---------|
//! | 0x01 | `Hello` | magic `b"ADWIRE"`, version `u8`, endianness `u8` (1 = LE), optional session token `u64` (absent or 0 = request a new session) |
//! | 0x02 | `OpenStream` | seq `u64`, flags `u32` (must be 0) |
//! | 0x03 | `SampleBatch` | seq `u64`, stream id (`u32`×3), channel count `u32`, sample count `u32`, name-table length `u32`, name table (names joined `\n`), channel indices `u32`×n, times `f64`×n, values `f64`×n |
//! | 0x04 | `CloseStream` | seq `u64`, stream id (`u32`×3) |
//! | 0x07 | `GetMetrics` | seq `u64` |
//! | 0x08 | `Resume` | session `u64`, last-acked seq `u64` (handshake-scoped; answered at seq 0) |
//!
//! Server → client:
//!
//! | type | frame | payload |
//! |------|-------|---------|
//! | 0x05 | `Ack` | seq `u64`, kind `u8`, kind-specific body |
//! | 0x06 | `Nack` | seq `u64`, reason `u8`, retry-after `u32` (µs) |
//!
//! The optional Hello session token and the `Resume` frame are the
//! crash-recovery extension (DESIGN.md §13): a producer that reconnects
//! presents its previous session token in `Hello`, then sends `Resume`
//! carrying the highest sequence it has a response for; the server
//! answers with [`AckBody::Resumed`] (its next expected sequence),
//! replays the stored responses in between, and the producer rewinds its
//! go-back-N window to the server's high-water mark instead of dying.
//! A bare `Hello` without the trailing token is exactly the pre-resume
//! v1 encoding, so old producers keep working unchanged.
//!
//! Sample batches are columnar inside the frame (index run, then time
//! run, then value run) so the decoder reads each section with one
//! `chunks_exact` pass. Times and values are *not* semantically
//! validated here: the shard applies the same monotonicity and
//! finiteness rules to wire batches as to in-process ones, so the two
//! paths stay bit-identical.

use adassure_trace::SignalId;

use crate::stream::{Sample, SampleBatch, StreamId};

/// Magic bytes opening every [`Frame::Hello`].
pub const MAGIC: &[u8; 6] = b"ADWIRE";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Endianness marker: 1 = little-endian (the only defined value).
pub const LITTLE_ENDIAN: u8 = 1;
/// Default cap on a frame body. A declared length above the decoder's
/// cap is rejected before any buffering, so a corrupt length prefix
/// cannot make the server allocate gigabytes.
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

const TYPE_HELLO: u8 = 0x01;
const TYPE_OPEN_STREAM: u8 = 0x02;
const TYPE_SAMPLE_BATCH: u8 = 0x03;
const TYPE_CLOSE_STREAM: u8 = 0x04;
const TYPE_ACK: u8 = 0x05;
const TYPE_NACK: u8 = 0x06;
const TYPE_GET_METRICS: u8 = 0x07;
const TYPE_RESUME: u8 = 0x08;

const ACK_HELLO: u8 = 0;
const ACK_STREAM_OPENED: u8 = 1;
const ACK_BATCH_APPLIED: u8 = 2;
const ACK_STREAM_CLOSED: u8 = 3;
const ACK_METRICS: u8 = 4;
const ACK_RESUMED: u8 = 5;

/// Typed decode/encode failures. Never a panic: every malformed input
/// maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A frame declared a body longer than the decoder's cap.
    FrameTooLong {
        /// Declared body length.
        len: usize,
        /// The decoder's cap.
        max: usize,
    },
    /// Structurally invalid frame content (bad type, short payload,
    /// section-length mismatch, invalid name table, …).
    Malformed {
        /// Human-readable description of the violation.
        message: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLong { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Malformed { message } => write!(f, "malformed frame: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why the server refused a frame. Submission reasons mirror
/// [`crate::SubmitError`]; stream reasons mirror [`crate::StreamError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The target shard's queue is full ([`crate::SubmitError::Saturated`]).
    /// The batch was not applied; re-send it after the frame's
    /// retry-after hint.
    Saturated,
    /// The stream id names a shard the fleet does not have
    /// ([`crate::SubmitError::UnknownShard`]). The frame is dropped and
    /// counted; the sequence advances.
    UnknownShard,
    /// The stream was already closed ([`crate::StreamError::StaleGeneration`]).
    StaleGeneration,
    /// The stream slot does not exist ([`crate::StreamError::UnknownSlot`]).
    UnknownSlot,
    /// The frame's sequence number is not the next expected one — it was
    /// in flight across a [`NackReason::Saturated`] rewind and will be
    /// re-sent by the producer. Informational; not applied, not fatal.
    Superseded,
    /// The frame (or the byte stream) is structurally invalid. The server
    /// closes the connection after sending this.
    Malformed,
    /// Valid frame, unsupported content (unknown protocol version,
    /// non-zero reserved flags). The connection closes.
    Unsupported,
    /// The fleet is shutting down; the connection closes.
    ShuttingDown,
    /// The Hello presented a session token the server does not know (it
    /// restarted without a checkpoint covering it, evicted the session,
    /// or another connection holds it). The connection closes; state
    /// continuity cannot be guaranteed.
    UnknownSession,
    /// A [`Frame::Resume`] asked for responses the server's bounded ack
    /// ring has already evicted. The connection closes.
    ResumeGap,
    /// The server is at its configured connection cap
    /// ([`crate::IngestConfig::max_connections`]); reconnect after the
    /// retry-after hint.
    ConnectionLimit,
}

impl NackReason {
    fn to_byte(self) -> u8 {
        match self {
            NackReason::Saturated => 0,
            NackReason::UnknownShard => 1,
            NackReason::StaleGeneration => 2,
            NackReason::UnknownSlot => 3,
            NackReason::Superseded => 4,
            NackReason::Malformed => 5,
            NackReason::Unsupported => 6,
            NackReason::ShuttingDown => 7,
            NackReason::UnknownSession => 8,
            NackReason::ResumeGap => 9,
            NackReason::ConnectionLimit => 10,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            0 => NackReason::Saturated,
            1 => NackReason::UnknownShard,
            2 => NackReason::StaleGeneration,
            3 => NackReason::UnknownSlot,
            4 => NackReason::Superseded,
            5 => NackReason::Malformed,
            6 => NackReason::Unsupported,
            7 => NackReason::ShuttingDown,
            8 => NackReason::UnknownSession,
            9 => NackReason::ResumeGap,
            10 => NackReason::ConnectionLimit,
            other => {
                return Err(WireError::Malformed {
                    message: format!("unknown nack reason {other}"),
                })
            }
        })
    }
}

impl std::fmt::Display for NackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NackReason::Saturated => "saturated",
            NackReason::UnknownShard => "unknown-shard",
            NackReason::StaleGeneration => "stale-generation",
            NackReason::UnknownSlot => "unknown-slot",
            NackReason::Superseded => "superseded",
            NackReason::Malformed => "malformed",
            NackReason::Unsupported => "unsupported",
            NackReason::ShuttingDown => "shutting-down",
            NackReason::UnknownSession => "unknown-session",
            NackReason::ResumeGap => "resume-gap",
            NackReason::ConnectionLimit => "connection-limit",
        };
        f.write_str(name)
    }
}

/// The body of a positive server response.
#[derive(Debug, Clone, PartialEq)]
pub enum AckBody {
    /// Handshake accepted; the server speaks `version` and assigned (or
    /// re-attached) the given session.
    Hello {
        /// Server protocol version.
        version: u8,
        /// Session token: present the same token in a later Hello to
        /// resume after a disconnect.
        session: u64,
    },
    /// A stream was opened for this connection.
    StreamOpened {
        /// The new stream's id, to address subsequent batches.
        stream: StreamId,
    },
    /// The batch was queued on its shard.
    BatchApplied {
        /// Highest sequence of this session covered by a persisted
        /// checkpoint; frames at or below it can never be asked for again
        /// and may be dropped from replay buffers.
        durable_seq: u64,
    },
    /// The stream was drained and closed.
    StreamClosed {
        /// The final [`adassure_core::CheckReport`], JSON-encoded.
        report_json: Vec<u8>,
    },
    /// Fleet-wide metrics, as the deterministic
    /// [`adassure_obs::ObsSummary`] JSON.
    Metrics {
        /// The summary JSON bytes.
        summary_json: Vec<u8>,
    },
    /// A [`Frame::Resume`] was accepted: the server's next expected
    /// sequence follows, and the stored responses between the producer's
    /// last-acked sequence and the high-water mark are replayed right
    /// after this ack.
    Resumed {
        /// The server will apply this sequence next; re-send everything
        /// from here on.
        next_seq: u64,
    },
}

/// One decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection handshake; must be the first frame a producer sends.
    Hello {
        /// Producer protocol version.
        version: u8,
        /// Session token to re-attach to, `0` to request a new session.
        /// Encoded as an optional trailing field: a bare v1 Hello decodes
        /// as `session == 0`.
        session: u64,
    },
    /// Request a new stream with default per-stream options.
    OpenStream {
        /// Sequence number.
        seq: u64,
        /// Reserved; must be zero.
        flags: u32,
    },
    /// A batch of samples for one open stream.
    SampleBatch {
        /// Sequence number.
        seq: u64,
        /// The decoded batch, ready for [`crate::Fleet::submit`].
        batch: SampleBatch,
    },
    /// Close a stream and return its report.
    CloseStream {
        /// Sequence number.
        seq: u64,
        /// The stream to close.
        stream: StreamId,
    },
    /// Request the fleet-wide deterministic metrics summary.
    GetMetrics {
        /// Sequence number.
        seq: u64,
    },
    /// Rewind request after a reconnect. Only valid directly after a
    /// [`Frame::Hello`] that presented the same session token, before any
    /// windowed frame; answered at sequence 0.
    Resume {
        /// The session being resumed.
        session: u64,
        /// Highest sequence the producer already holds a response for;
        /// the server replays stored responses above it.
        last_acked: u64,
    },
    /// Positive response to the frame with the same sequence number.
    Ack {
        /// Sequence number being answered (0 for the handshake).
        seq: u64,
        /// Response body.
        body: AckBody,
    },
    /// Negative response; see [`NackReason`] for retry semantics.
    Nack {
        /// Sequence number being refused.
        seq: u64,
        /// Typed reason.
        reason: NackReason,
        /// Suggested retry delay in microseconds (meaningful for
        /// [`NackReason::Saturated`], zero otherwise).
        retry_after_us: u32,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Reserves the length prefix, runs `fill`, then patches the prefix.
fn with_frame(out: &mut Vec<u8>, fill: impl FnOnce(&mut Vec<u8>)) {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    fill(out);
    let body_len = out.len() - at - 4;
    #[allow(clippy::cast_possible_truncation)] // bodies are bounded by the frame cap
    out[at..at + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
}

fn put_stream(out: &mut Vec<u8>, stream: StreamId) {
    let (shard, slot, gen) = stream.into_raw();
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&slot.to_le_bytes());
    out.extend_from_slice(&gen.to_le_bytes());
}

/// Appends an encoded [`Frame::Hello`] requesting a new session (the
/// bare pre-resume v1 form, without the trailing session token).
pub fn encode_hello(out: &mut Vec<u8>) {
    with_frame(out, |out| {
        out.push(TYPE_HELLO);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(LITTLE_ENDIAN);
    });
}

/// Appends an encoded [`Frame::Hello`] carrying an explicit session
/// token (`0` requests a new session; a previous token re-attaches).
pub fn encode_hello_session(out: &mut Vec<u8>, session: u64) {
    with_frame(out, |out| {
        out.push(TYPE_HELLO);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(LITTLE_ENDIAN);
        out.extend_from_slice(&session.to_le_bytes());
    });
}

/// Appends an encoded [`Frame::Resume`] to `out`.
pub fn encode_resume(out: &mut Vec<u8>, session: u64, last_acked: u64) {
    with_frame(out, |out| {
        out.push(TYPE_RESUME);
        out.extend_from_slice(&session.to_le_bytes());
        out.extend_from_slice(&last_acked.to_le_bytes());
    });
}

/// Appends an encoded [`Frame::OpenStream`] to `out`.
pub fn encode_open_stream(out: &mut Vec<u8>, seq: u64) {
    with_frame(out, |out| {
        out.push(TYPE_OPEN_STREAM);
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
    });
}

/// Appends an encoded [`Frame::SampleBatch`] to `out`. The per-frame
/// channel table is built from the batch's channels in first-appearance
/// order.
///
/// # Errors
///
/// [`WireError::Malformed`] when a channel name is empty or contains the
/// `\n` table separator (such names cannot round-trip).
pub fn encode_sample_batch(
    out: &mut Vec<u8>,
    seq: u64,
    batch: &SampleBatch,
) -> Result<(), WireError> {
    let mut channels: Vec<&SignalId> = Vec::new();
    let mut indices: Vec<u32> = Vec::with_capacity(batch.samples.len());
    for sample in &batch.samples {
        let name = sample.channel.as_str();
        if name.is_empty() || name.contains('\n') {
            return Err(WireError::Malformed {
                message: format!("channel name {name:?} cannot be encoded"),
            });
        }
        let idx = match channels.iter().position(|c| **c == sample.channel) {
            Some(i) => i,
            None => {
                channels.push(&sample.channel);
                channels.len() - 1
            }
        };
        #[allow(clippy::cast_possible_truncation)] // bounded by sample count < u32::MAX
        indices.push(idx as u32);
    }
    with_frame(out, |out| {
        out.push(TYPE_SAMPLE_BATCH);
        out.extend_from_slice(&seq.to_le_bytes());
        put_stream(out, batch.stream);
        #[allow(clippy::cast_possible_truncation)]
        out.extend_from_slice(&(channels.len() as u32).to_le_bytes());
        #[allow(clippy::cast_possible_truncation)]
        out.extend_from_slice(&(batch.samples.len() as u32).to_le_bytes());
        let table_start = out.len();
        out.extend_from_slice(&0u32.to_le_bytes());
        for (i, channel) in channels.iter().enumerate() {
            if i > 0 {
                out.push(b'\n');
            }
            out.extend_from_slice(channel.as_str().as_bytes());
        }
        let table_len = out.len() - table_start - 4;
        #[allow(clippy::cast_possible_truncation)]
        out[table_start..table_start + 4].copy_from_slice(&(table_len as u32).to_le_bytes());
        for &idx in &indices {
            out.extend_from_slice(&idx.to_le_bytes());
        }
        for sample in &batch.samples {
            out.extend_from_slice(&sample.t.to_le_bytes());
        }
        for sample in &batch.samples {
            out.extend_from_slice(&sample.value.to_le_bytes());
        }
    });
    Ok(())
}

/// Appends an encoded [`Frame::CloseStream`] to `out`.
pub fn encode_close_stream(out: &mut Vec<u8>, seq: u64, stream: StreamId) {
    with_frame(out, |out| {
        out.push(TYPE_CLOSE_STREAM);
        out.extend_from_slice(&seq.to_le_bytes());
        put_stream(out, stream);
    });
}

/// Appends an encoded [`Frame::GetMetrics`] to `out`.
pub fn encode_get_metrics(out: &mut Vec<u8>, seq: u64) {
    with_frame(out, |out| {
        out.push(TYPE_GET_METRICS);
        out.extend_from_slice(&seq.to_le_bytes());
    });
}

/// Appends an encoded [`Frame::Ack`] to `out`.
pub fn encode_ack(out: &mut Vec<u8>, seq: u64, body: &AckBody) {
    with_frame(out, |out| {
        out.push(TYPE_ACK);
        out.extend_from_slice(&seq.to_le_bytes());
        match body {
            AckBody::Hello { version, session } => {
                out.push(ACK_HELLO);
                out.push(*version);
                out.extend_from_slice(&session.to_le_bytes());
            }
            AckBody::StreamOpened { stream } => {
                out.push(ACK_STREAM_OPENED);
                put_stream(out, *stream);
            }
            AckBody::BatchApplied { durable_seq } => {
                out.push(ACK_BATCH_APPLIED);
                out.extend_from_slice(&durable_seq.to_le_bytes());
            }
            AckBody::StreamClosed { report_json } => {
                out.push(ACK_STREAM_CLOSED);
                #[allow(clippy::cast_possible_truncation)]
                out.extend_from_slice(&(report_json.len() as u32).to_le_bytes());
                out.extend_from_slice(report_json);
            }
            AckBody::Metrics { summary_json } => {
                out.push(ACK_METRICS);
                #[allow(clippy::cast_possible_truncation)]
                out.extend_from_slice(&(summary_json.len() as u32).to_le_bytes());
                out.extend_from_slice(summary_json);
            }
            AckBody::Resumed { next_seq } => {
                out.push(ACK_RESUMED);
                out.extend_from_slice(&next_seq.to_le_bytes());
            }
        }
    });
}

/// Appends an encoded [`Frame::Nack`] to `out`.
pub fn encode_nack(out: &mut Vec<u8>, seq: u64, reason: NackReason, retry_after_us: u32) {
    with_frame(out, |out| {
        out.push(TYPE_NACK);
        out.extend_from_slice(&seq.to_le_bytes());
        out.push(reason.to_byte());
        out.extend_from_slice(&retry_after_us.to_le_bytes());
    });
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian cursor over one frame body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn bad(message: impl Into<String>) -> WireError {
        WireError::Malformed {
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| Cursor::bad(format!("truncated payload: {what} needs {n} bytes")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn stream(&mut self) -> Result<StreamId, WireError> {
        let shard = self.u32("stream shard")?;
        let slot = self.u32("stream slot")?;
        let gen = self.u32("stream generation")?;
        Ok(StreamId::from_raw(shard, slot, gen))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn done(&self, what: &str) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(Cursor::bad(format!(
                "{} trailing bytes after {what}",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Parses one complete frame body (type byte + payload).
fn parse_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor::new(body);
    let frame_type = c.u8("frame type")?;
    match frame_type {
        TYPE_HELLO => {
            let magic = c.take(6, "hello magic")?;
            if magic != MAGIC {
                return Err(Cursor::bad("bad hello magic (not an ADWIRE stream)"));
            }
            let version = c.u8("hello version")?;
            let endian = c.u8("hello endianness")?;
            if endian != LITTLE_ENDIAN {
                return Err(Cursor::bad(format!(
                    "unsupported endianness marker {endian}"
                )));
            }
            // The session token is an optional trailing field: bare v1
            // hellos decode as "request a new session".
            let session = if c.remaining() == 0 {
                0
            } else {
                c.u64("hello session")?
            };
            c.done("hello")?;
            Ok(Frame::Hello { version, session })
        }
        TYPE_OPEN_STREAM => {
            let seq = c.u64("open seq")?;
            let flags = c.u32("open flags")?;
            c.done("open-stream")?;
            Ok(Frame::OpenStream { seq, flags })
        }
        TYPE_SAMPLE_BATCH => {
            let seq = c.u64("batch seq")?;
            let stream = c.stream()?;
            let channel_count = c.u32("channel count")? as usize;
            let sample_count = c.u32("sample count")? as usize;
            let table_len = c.u32("name table length")? as usize;
            let table = c.take(table_len, "name table")?;
            let text = std::str::from_utf8(table)
                .map_err(|_| Cursor::bad("name table is not valid UTF-8"))?;
            let names: Vec<&str> = if text.is_empty() {
                Vec::new()
            } else {
                text.split('\n').collect()
            };
            if names.len() != channel_count {
                return Err(Cursor::bad(format!(
                    "name table holds {} names, header says {channel_count}",
                    names.len()
                )));
            }
            if names.iter().any(|n| n.is_empty()) {
                return Err(Cursor::bad("empty channel name in name table"));
            }
            let channels: Vec<SignalId> = names.into_iter().map(SignalId::new).collect();
            let idx_bytes = c.take(4 * sample_count, "channel indices")?;
            let time_bytes = c.take(8 * sample_count, "sample times")?;
            let value_bytes = c.take(8 * sample_count, "sample values")?;
            c.done("sample batch")?;
            let mut samples = Vec::with_capacity(sample_count);
            for ((ib, tb), vb) in idx_bytes
                .chunks_exact(4)
                .zip(time_bytes.chunks_exact(8))
                .zip(value_bytes.chunks_exact(8))
            {
                let idx = u32::from_le_bytes([ib[0], ib[1], ib[2], ib[3]]) as usize;
                let channel = channels.get(idx).ok_or_else(|| {
                    Cursor::bad(format!(
                        "channel index {idx} out of range ({channel_count})"
                    ))
                })?;
                samples.push(Sample {
                    t: f64::from_le_bytes([tb[0], tb[1], tb[2], tb[3], tb[4], tb[5], tb[6], tb[7]]),
                    channel: channel.clone(),
                    value: f64::from_le_bytes([
                        vb[0], vb[1], vb[2], vb[3], vb[4], vb[5], vb[6], vb[7],
                    ]),
                });
            }
            Ok(Frame::SampleBatch {
                seq,
                batch: SampleBatch { stream, samples },
            })
        }
        TYPE_CLOSE_STREAM => {
            let seq = c.u64("close seq")?;
            let stream = c.stream()?;
            c.done("close-stream")?;
            Ok(Frame::CloseStream { seq, stream })
        }
        TYPE_GET_METRICS => {
            let seq = c.u64("metrics seq")?;
            c.done("get-metrics")?;
            Ok(Frame::GetMetrics { seq })
        }
        TYPE_RESUME => {
            let session = c.u64("resume session")?;
            let last_acked = c.u64("resume last-acked")?;
            c.done("resume")?;
            Ok(Frame::Resume {
                session,
                last_acked,
            })
        }
        TYPE_ACK => {
            let seq = c.u64("ack seq")?;
            let kind = c.u8("ack kind")?;
            let body = match kind {
                ACK_HELLO => AckBody::Hello {
                    version: c.u8("server version")?,
                    session: c.u64("server session")?,
                },
                ACK_STREAM_OPENED => AckBody::StreamOpened {
                    stream: c.stream()?,
                },
                ACK_BATCH_APPLIED => AckBody::BatchApplied {
                    durable_seq: c.u64("durable seq")?,
                },
                ACK_STREAM_CLOSED => {
                    let len = c.u32("report length")? as usize;
                    AckBody::StreamClosed {
                        report_json: c.take(len, "report JSON")?.to_vec(),
                    }
                }
                ACK_METRICS => {
                    let len = c.u32("summary length")? as usize;
                    AckBody::Metrics {
                        summary_json: c.take(len, "summary JSON")?.to_vec(),
                    }
                }
                ACK_RESUMED => AckBody::Resumed {
                    next_seq: c.u64("resume next seq")?,
                },
                other => return Err(Cursor::bad(format!("unknown ack kind {other}"))),
            };
            c.done("ack")?;
            Ok(Frame::Ack { seq, body })
        }
        TYPE_NACK => {
            let seq = c.u64("nack seq")?;
            let reason = NackReason::from_byte(c.u8("nack reason")?)?;
            let retry_after_us = c.u32("nack retry-after")?;
            c.done("nack")?;
            Ok(Frame::Nack {
                seq,
                reason,
                retry_after_us,
            })
        }
        other => Err(Cursor::bad(format!("unknown frame type {other:#04x}"))),
    }
}

/// A streaming frame decoder over an arbitrary byte-chunk sequence.
///
/// Feed it whatever the socket yields ([`FrameDecoder::feed`]) and pull
/// complete frames with [`FrameDecoder::next_frame`]; partial frames stay
/// buffered until their remaining bytes arrive. Errors are sticky: a
/// malformed or oversized frame poisons the connection (framing can no
/// longer be trusted), so every later call returns the same error.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
    max_frame_len: usize,
    poisoned: Option<WireError>,
}

impl FrameDecoder {
    /// A decoder enforcing `max_frame_len` as the body-length cap.
    pub fn new(max_frame_len: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame_len,
            poisoned: None,
        }
    }

    /// Appends raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: drop the consumed prefix once it
        // dominates the buffer so memory stays bounded by one frame.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet consumed by a complete frame.
    /// Non-zero at end-of-stream means the peer disconnected mid-frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLong`] for a declared body beyond the cap,
    /// [`WireError::Malformed`] for structural violations. Errors are
    /// sticky — the stream cannot be re-synchronised after one.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if body_len == 0 {
            return Err(self.poison(WireError::Malformed {
                message: "empty frame body".into(),
            }));
        }
        if body_len > self.max_frame_len {
            return Err(self.poison(WireError::FrameTooLong {
                len: body_len,
                max: self.max_frame_len,
            }));
        }
        if avail.len() < 4 + body_len {
            return Ok(None);
        }
        let body = &avail[4..4 + body_len];
        match parse_body(body) {
            Ok(frame) => {
                self.start += 4 + body_len;
                Ok(Some(frame))
            }
            Err(err) => Err(self.poison(err)),
        }
    }

    fn poison(&mut self, err: WireError) -> WireError {
        self.poisoned = Some(err.clone());
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_id() -> StreamId {
        StreamId::from_raw(3, 17, 2)
    }

    fn sample_batch() -> SampleBatch {
        let mut batch = SampleBatch::new(stream_id());
        batch.push(0.05, "xtrack", 0.4);
        batch.push(0.05, "speed", 5.0);
        batch.push(0.10, "xtrack", f64::NAN);
        batch.push(0.10, "gnss_x", -12.5);
        batch
    }

    fn decode_all(bytes: &[u8]) -> Vec<Frame> {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        dec.feed(bytes);
        let mut frames = Vec::new();
        while let Some(frame) = dec.next_frame().expect("valid frames") {
            frames.push(frame);
        }
        assert_eq!(dec.pending(), 0);
        frames
    }

    #[test]
    fn every_frame_round_trips() {
        let mut out = Vec::new();
        encode_hello(&mut out);
        encode_open_stream(&mut out, 1);
        encode_sample_batch(&mut out, 2, &sample_batch()).unwrap();
        encode_close_stream(&mut out, 3, stream_id());
        encode_get_metrics(&mut out, 4);
        encode_ack(
            &mut out,
            0,
            &AckBody::Hello {
                version: VERSION,
                session: 7,
            },
        );
        encode_ack(
            &mut out,
            1,
            &AckBody::StreamOpened {
                stream: stream_id(),
            },
        );
        encode_ack(&mut out, 2, &AckBody::BatchApplied { durable_seq: 1 });
        encode_ack(
            &mut out,
            3,
            &AckBody::StreamClosed {
                report_json: b"{\"violations\":[]}".to_vec(),
            },
        );
        encode_ack(
            &mut out,
            4,
            &AckBody::Metrics {
                summary_json: b"{}".to_vec(),
            },
        );
        encode_nack(&mut out, 9, NackReason::Saturated, 150);

        let frames = decode_all(&out);
        assert_eq!(frames.len(), 11);
        assert_eq!(
            frames[0],
            Frame::Hello {
                version: VERSION,
                session: 0
            }
        );
        assert_eq!(frames[1], Frame::OpenStream { seq: 1, flags: 0 });
        match &frames[2] {
            Frame::SampleBatch { seq: 2, batch } => {
                let expected = sample_batch();
                assert_eq!(batch.stream, expected.stream);
                assert_eq!(batch.samples.len(), expected.samples.len());
                for (a, b) in batch.samples.iter().zip(&expected.samples) {
                    assert_eq!(a.t.to_bits(), b.t.to_bits());
                    assert_eq!(a.channel, b.channel);
                    assert_eq!(a.value.to_bits(), b.value.to_bits());
                }
            }
            other => panic!("expected sample batch, got {other:?}"),
        }
        assert_eq!(
            frames[3],
            Frame::CloseStream {
                seq: 3,
                stream: stream_id()
            }
        );
        assert_eq!(frames[4], Frame::GetMetrics { seq: 4 });
        assert_eq!(
            frames[10],
            Frame::Nack {
                seq: 9,
                reason: NackReason::Saturated,
                retry_after_us: 150
            }
        );
    }

    #[test]
    fn session_and_resume_frames_round_trip() {
        let mut out = Vec::new();
        encode_hello_session(&mut out, 0xDEAD_BEEF_0042);
        encode_hello_session(&mut out, 0);
        encode_resume(&mut out, 0xDEAD_BEEF_0042, 17);
        encode_ack(&mut out, 0, &AckBody::Resumed { next_seq: 18 });
        encode_ack(&mut out, 2, &AckBody::BatchApplied { durable_seq: 0 });
        encode_nack(&mut out, 0, NackReason::UnknownSession, 0);
        encode_nack(&mut out, 0, NackReason::ResumeGap, 0);
        encode_nack(&mut out, 0, NackReason::ConnectionLimit, 5_000);

        let frames = decode_all(&out);
        assert_eq!(
            frames[0],
            Frame::Hello {
                version: VERSION,
                session: 0xDEAD_BEEF_0042
            }
        );
        assert_eq!(
            frames[1],
            Frame::Hello {
                version: VERSION,
                session: 0
            }
        );
        assert_eq!(
            frames[2],
            Frame::Resume {
                session: 0xDEAD_BEEF_0042,
                last_acked: 17
            }
        );
        assert_eq!(
            frames[3],
            Frame::Ack {
                seq: 0,
                body: AckBody::Resumed { next_seq: 18 }
            }
        );
        assert_eq!(
            frames[4],
            Frame::Ack {
                seq: 2,
                body: AckBody::BatchApplied { durable_seq: 0 }
            }
        );
        assert_eq!(
            frames[5],
            Frame::Nack {
                seq: 0,
                reason: NackReason::UnknownSession,
                retry_after_us: 0
            }
        );
        assert_eq!(
            frames[6],
            Frame::Nack {
                seq: 0,
                reason: NackReason::ResumeGap,
                retry_after_us: 0
            }
        );
        assert_eq!(
            frames[7],
            Frame::Nack {
                seq: 0,
                reason: NackReason::ConnectionLimit,
                retry_after_us: 5_000
            }
        );
    }

    #[test]
    fn bare_hello_and_session_hello_are_both_accepted() {
        // The bare (pre-resume) Hello encoding must keep decoding as
        // session 0 — old producers stay compatible.
        let mut bare = Vec::new();
        encode_hello(&mut bare);
        let mut with_session = Vec::new();
        encode_hello_session(&mut with_session, 0);
        assert_eq!(bare.len() + 8, with_session.len());
        assert_eq!(
            decode_all(&bare)[0],
            Frame::Hello {
                version: VERSION,
                session: 0
            }
        );
        // A partial trailing token is malformed, not silently truncated.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut bad = Vec::new();
        with_frame(&mut bad, |out| {
            out.push(TYPE_HELLO);
            out.extend_from_slice(MAGIC);
            out.push(VERSION);
            out.push(LITTLE_ENDIAN);
            out.extend_from_slice(&[1, 2, 3]);
        });
        dec.feed(&bad);
        assert!(matches!(dec.next_frame(), Err(WireError::Malformed { .. })));
    }

    #[test]
    fn byte_at_a_time_feeding_reassembles_frames() {
        let mut out = Vec::new();
        encode_hello(&mut out);
        encode_sample_batch(&mut out, 0, &sample_batch()).unwrap();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        let mut frames = Vec::new();
        for &b in &out {
            dec.feed(&[b]);
            while let Some(frame) = dec.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::new(1024);
        dec.feed(&(u32::MAX).to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(WireError::FrameTooLong {
                len: u32::MAX as usize,
                max: 1024
            })
        );
        // Sticky: the framing is unrecoverable.
        dec.feed(&[0u8; 16]);
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::FrameTooLong { .. })
        ));
    }

    #[test]
    fn channel_index_out_of_range_is_typed() {
        let mut out = Vec::new();
        encode_sample_batch(&mut out, 0, &sample_batch()).unwrap();
        // The index section starts right after the name table; corrupt the
        // first index to an out-of-range value.
        let table_len_at = 4 + 1 + 8 + 12 + 4 + 4;
        let table_len =
            u32::from_le_bytes(out[table_len_at..table_len_at + 4].try_into().unwrap()) as usize;
        let idx_at = table_len_at + 4 + table_len;
        out[idx_at..idx_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        dec.feed(&out);
        assert!(matches!(dec.next_frame(), Err(WireError::Malformed { .. })));
    }

    #[test]
    fn newline_in_channel_name_is_an_encode_error() {
        let mut batch = SampleBatch::new(stream_id());
        batch.push(0.1, "bad\nname", 1.0);
        let mut out = Vec::new();
        assert!(matches!(
            encode_sample_batch(&mut out, 0, &batch),
            Err(WireError::Malformed { .. })
        ));
    }
}
