//! Validates a structured observability event log (`.jsonl`):
//!
//! * every line parses as exactly one JSON **object**;
//! * every object carries a `"kind"` string and a numeric `"run"`;
//! * within each run, the `"t"` timestamps are monotone non-decreasing
//!   (events are emitted in cycle order, so a regression here means the
//!   log was reordered or interleaved incorrectly).
//!
//! Usage: `jsonl_check <events.jsonl>`; exits non-zero on the first
//! malformed file, printing every violation found.

use std::process::ExitCode;

use serde::de::Content;

fn field<'a>(object: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
    object.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_u64(content: &Content) -> Option<u64> {
    match *content {
        Content::U64(v) => Some(v),
        Content::I64(v) => u64::try_from(v).ok(),
        _ => None,
    }
}

fn as_f64(content: &Content) -> Option<f64> {
    match *content {
        Content::F64(v) => Some(v),
        Content::U64(v) => Some(v as f64),
        Content::I64(v) => Some(v as f64),
        _ => None,
    }
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: jsonl_check <events.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("jsonl_check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut errors = 0usize;
    let mut lines = 0usize;
    // Last timestamp seen per run id, in first-seen order (run count is
    // small: one per campaign cell).
    let mut last_t: Vec<(u64, f64)> = Vec::new();
    let complain = |line: usize, message: String| {
        eprintln!("{path}:{line}: {message}");
    };

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        lines += 1;
        let object = match serde_json::parse_content(line) {
            Ok(Content::Map(fields)) => fields,
            Ok(other) => {
                complain(lineno, format!("not a JSON object: {}", other.kind()));
                errors += 1;
                continue;
            }
            Err(err) => {
                complain(lineno, format!("does not parse as JSON: {err}"));
                errors += 1;
                continue;
            }
        };
        if !matches!(field(&object, "kind"), Some(Content::String(_))) {
            complain(lineno, "missing string field \"kind\"".to_owned());
            errors += 1;
        }
        let Some(run) = field(&object, "run").and_then(as_u64) else {
            complain(lineno, "missing numeric field \"run\"".to_owned());
            errors += 1;
            continue;
        };
        // A null `t` encodes a non-finite timestamp; it is legal but
        // excluded from the monotonicity check.
        let Some(t) = field(&object, "t").and_then(as_f64) else {
            continue;
        };
        match last_t.iter_mut().find(|(r, _)| *r == run) {
            Some((_, last)) => {
                if t < *last {
                    complain(
                        lineno,
                        format!("run {run}: timestamp {t} regresses below {last}"),
                    );
                    errors += 1;
                } else {
                    *last = t;
                }
            }
            None => last_t.push((run, t)),
        }
    }

    if errors == 0 {
        println!(
            "jsonl_check: {path}: {lines} events across {} runs, all valid",
            last_t.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("jsonl_check: {path}: {errors} violation(s) in {lines} lines");
        ExitCode::FAILURE
    }
}
