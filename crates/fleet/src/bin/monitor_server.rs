//! `monitor-server` — a demo fleet monitor service.
//!
//! Drives a synthetic vehicle fleet through the sharded checker and
//! serves the merged metrics over HTTP (`GET /metrics`, Prometheus text
//! format; `GET /metrics.json` for the JSON exporter), plus fleet-level
//! gauges (open streams, rejected batches, stale drops). Plain
//! `std::net` — no async runtime, one thread per connection, which is
//! plenty for a scrape endpoint.
//!
//! ```text
//! monitor-server [--streams N] [--shards N] [--port P] [--ticks N] [--once]
//! ```
//!
//! `--once` runs `--ticks` ingestion ticks and prints the Prometheus
//! export to stdout instead of serving — the CI smoke mode.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

use adassure_core::{Assertion, Condition, Severity, SignalExpr};
use adassure_fleet::{Fleet, FleetConfig, SampleBatch, StreamId, SubmitError};
use adassure_obs::export;

struct Args {
    streams: usize,
    shards: usize,
    port: u16,
    ticks: u64,
    once: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 256,
        shards: 8,
        port: 9464,
        ticks: 200,
        once: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match flag.as_str() {
            "--streams" => args.streams = grab("--streams") as usize,
            "--shards" => args.shards = grab("--shards") as usize,
            "--port" => args.port = grab("--port") as u16,
            "--ticks" => args.ticks = grab("--ticks"),
            "--once" => args.once = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn catalog() -> Vec<Assertion> {
    vec![
        Assertion::new(
            "S1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack").abs(),
                limit: 1.0,
            },
        ),
        Assertion::new(
            "S2",
            "speed stays non-negative",
            Severity::Warning,
            Condition::AtLeast {
                expr: SignalExpr::signal("speed"),
                limit: 0.0,
            },
        ),
        Assertion::new(
            "S3",
            "gnss fix is fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.5,
            },
        ),
    ]
}

/// Deterministic per-stream telemetry synthesizer (split-mix style LCG).
struct Synth {
    state: u64,
    t: f64,
}

impl Synth {
    fn new(seed: u64) -> Self {
        Synth {
            state: seed.wrapping_mul(2654435761).wrapping_add(12345),
            t: 0.0,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    fn uniform(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }

    /// One cycle of samples at the stream's next timestamp.
    fn cycle(&mut self, id: StreamId) -> SampleBatch {
        self.t += 0.05;
        let mut batch = SampleBatch::new(id);
        let roll = self.uniform();
        let xtrack = if roll < 0.02 {
            1.0 + self.uniform() * 2.0
        } else {
            self.uniform() * 0.9
        };
        batch.push(self.t, "xtrack", xtrack);
        batch.push(self.t, "speed", 4.0 + self.uniform());
        if self.uniform() > 0.2 {
            batch.push(self.t, "gnss_x", self.uniform() * 50.0);
        }
        batch
    }
}

/// One ingestion tick: a cycle for every stream, retrying on saturation.
fn tick(fleet: &mut Fleet, ids: &[StreamId], synths: &mut [Synth]) {
    for (id, synth) in ids.iter().zip(synths.iter_mut()) {
        let mut batch = synth.cycle(*id);
        loop {
            match fleet.submit(batch) {
                Ok(()) => break,
                Err(SubmitError::Saturated { batch: b, .. }) => {
                    fleet.poll();
                    batch = b;
                }
                Err(other) => panic!("submit failed: {other}"),
            }
        }
    }
    fleet.poll();
}

/// The Prometheus page: checker metrics plus fleet-level counters.
fn metrics_page(fleet: &Fleet) -> String {
    let mut page = export::prometheus(&fleet.metrics());
    let stats = fleet.stats();
    let latency = fleet.cycle_latency();
    page.push_str(&format!(
        "# TYPE adassure_fleet_open_streams gauge\n\
         adassure_fleet_open_streams {}\n\
         # TYPE adassure_fleet_rejected_batches counter\n\
         adassure_fleet_rejected_batches {}\n\
         # TYPE adassure_fleet_stale_batches counter\n\
         adassure_fleet_stale_batches {}\n\
         # TYPE adassure_fleet_bad_cycles counter\n\
         adassure_fleet_bad_cycles {}\n\
         # TYPE adassure_fleet_samples counter\n\
         adassure_fleet_samples {}\n",
        stats.open_streams,
        stats.rejected_batches,
        stats.stale_batches,
        stats.bad_cycles,
        stats.samples,
    ));
    if let (Some(p50), Some(p99)) = (latency.p50(), latency.p99()) {
        page.push_str(&format!(
            "# TYPE adassure_fleet_cycle_latency_ns summary\n\
             adassure_fleet_cycle_latency_ns{{quantile=\"0.5\"}} {p50}\n\
             adassure_fleet_cycle_latency_ns{{quantile=\"0.99\"}} {p99}\n",
        ));
    }
    page
}

fn main() {
    let args = parse_args();
    let mut fleet = Fleet::new(
        catalog(),
        FleetConfig {
            shards: args.shards,
            ..FleetConfig::default()
        },
    );
    let ids: Vec<StreamId> = (0..args.streams).map(|_| fleet.open_stream()).collect();
    let mut synths: Vec<Synth> = (0..args.streams).map(|i| Synth::new(i as u64)).collect();

    if args.once {
        for _ in 0..args.ticks {
            tick(&mut fleet, &ids, &mut synths);
        }
        print!("{}", metrics_page(&fleet));
        let stats = fleet.stats();
        eprintln!(
            "monitor-server: {} streams, {} cycles, {} violations, {} rejected batches",
            args.streams, stats.cycles, stats.violations, stats.rejected_batches
        );
        return;
    }

    let fleet = Arc::new(Mutex::new(fleet));
    {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || loop {
            {
                let mut fleet = fleet.lock().expect("fleet lock");
                tick(&mut fleet, &ids, &mut synths);
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }

    let listener = TcpListener::bind(("127.0.0.1", args.port)).expect("bind metrics port");
    eprintln!(
        "monitor-server: serving /metrics on 127.0.0.1:{} ({} streams, {} shards)",
        args.port, args.streams, args.shards
    );
    for stream in listener.incoming() {
        let Ok(mut conn) = stream else { continue };
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || {
            let mut buf = [0u8; 1024];
            let n = conn.read(&mut buf).unwrap_or(0);
            let request = String::from_utf8_lossy(&buf[..n]);
            let path = request.split_whitespace().nth(1).unwrap_or("/");
            let (status, body, content_type) = {
                let fleet = fleet.lock().expect("fleet lock");
                match path {
                    "/metrics" => ("200 OK", metrics_page(&fleet), "text/plain; version=0.0.4"),
                    "/metrics.json" => {
                        ("200 OK", export::json(&fleet.metrics()), "application/json")
                    }
                    _ => ("404 Not Found", String::from("not found\n"), "text/plain"),
                }
            };
            let _ = write!(
                conn,
                "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
        });
    }
}
