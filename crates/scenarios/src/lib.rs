//! Scenario library for ADAssure experiments.
//!
//! A [`Scenario`] bundles a reference track, a cruise speed and a time
//! budget — the workloads every experiment table sweeps over. The [`run`]
//! module wires a scenario, a controller stack and an optional attack tap
//! into one call.
//!
//! # Example
//!
//! ```
//! use adassure_scenarios::{Scenario, ScenarioKind, run};
//! use adassure_control::ControllerKind;
//!
//! # fn main() -> Result<(), adassure_sim::SimError> {
//! let scenario = Scenario::of_kind(ScenarioKind::Straight)?;
//! let out = run::clean(&scenario, ControllerKind::PurePursuit, 42)?;
//! assert!(out.reached_goal);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod library;
pub mod repro;
pub mod run;
mod scenario;

pub use repro::{ReproCase, ReproError, ReproExpectation};
pub use scenario::{Scenario, ScenarioKind};
