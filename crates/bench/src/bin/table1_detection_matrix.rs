//! **T1 — Detection matrix**: which assertion fires under which attack.
//!
//! Rows: the eleven standard attacks. Columns: the catalog assertions.
//! A `x` marks "fired in at least one run" over three scenarios (straight,
//! s-curve, urban loop) with the Pure Pursuit stack.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin table1_detection_matrix`

use std::collections::BTreeSet;

use adassure_bench::{attacks_for, catalog_for, run_attacked, run_clean};
use adassure_control::ControllerKind;
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let scenarios: Vec<Scenario> = [
        ScenarioKind::Straight,
        ScenarioKind::SCurve,
        ScenarioKind::UrbanLoop,
    ]
    .iter()
    .map(|&k| Scenario::of_kind(k).expect("library scenario"))
    .collect();
    let controller = ControllerKind::PurePursuit;
    let seed = 1;

    let assertion_ids: Vec<String> = (1..=16).map(|i| format!("A{i}")).collect();

    println!("T1: detection matrix (attack x assertion), {controller} stack, seed {seed}");
    println!("scenarios: straight, s_curve, urban_loop; x = fired in >=1 run\n");
    print!("{:<20}", "attack \\ assertion");
    for id in &assertion_ids {
        print!("{id:>5}");
    }
    println!();

    // Clean baseline row: must be empty.
    let mut clean_fired: BTreeSet<String> = BTreeSet::new();
    for scenario in &scenarios {
        let cat = catalog_for(scenario);
        let (_, report) = run_clean(scenario, controller, seed, &cat).expect("clean run");
        clean_fired.extend(report.violated_ids().iter().map(|i| i.as_str().to_owned()));
    }
    print!("{:<20}", "(clean)");
    for id in &assertion_ids {
        print!("{:>5}", if clean_fired.contains(id) { "x" } else { "." });
    }
    println!();

    for attack in attacks_for(&scenarios[0]) {
        let mut fired: BTreeSet<String> = BTreeSet::new();
        for scenario in &scenarios {
            let cat = catalog_for(scenario);
            let spec = adassure_attacks::campaign::AttackSpec::new(
                attack.kind,
                adassure_attacks::Window::from_start(scenario.attack_start),
            );
            let (_, report) =
                run_attacked(scenario, controller, &spec, seed, &cat).expect("attacked run");
            fired.extend(
                report
                    .violated_ids()
                    .iter()
                    // Only count violations detected after attack onset.
                    .filter(|id| {
                        report
                            .violations_of(id.as_str())
                            .any(|v| v.detected >= scenario.attack_start)
                    })
                    .map(|i| i.as_str().to_owned()),
            );
        }
        print!("{:<20}", attack.name());
        for id in &assertion_ids {
            print!("{:>5}", if fired.contains(id) { "x" } else { "." });
        }
        println!();
    }
    println!("\n(A12 'goal eventually reached' only exists on open routes; the urban");
    println!(" loop is closed, so its column reflects the two open scenarios.)");
}
