//! Property-based tests of the attack-injection substrate.

use adassure_attacks::campaign::{scale_attack, standard_attacks};
use adassure_attacks::{AttackInjector, AttackKind, Window};
use adassure_sim::engine::SensorTap;
use adassure_sim::geometry::Vec2;
use adassure_sim::sensor::SensorFrame;
use adassure_sim::vehicle::VehicleState;
use proptest::prelude::*;

fn frame(t: f64) -> SensorFrame {
    SensorFrame {
        time: t,
        gnss: Some(Vec2::new(10.0, -3.0)),
        wheel_speed: 6.0,
        imu_yaw_rate: 0.05,
        imu_accel: 0.2,
        compass: 0.4,
    }
}

proptest! {
    #[test]
    fn no_attack_mutates_frames_outside_its_window(
        start in 1.0f64..50.0,
        len in 0.1f64..20.0,
        t_before_frac in 0.0f64..0.99,
        t_after_off in 0.01f64..50.0,
        attack_idx in 0usize..11,
    ) {
        let window = Window::new(start, start + len);
        let kind = standard_attacks(0.0)[attack_idx].kind;
        let mut injector = AttackInjector::new(kind, window, 7);
        let truth = VehicleState::at([10.0, -3.0], 0.4);

        let t_before = start * t_before_frac;
        let mut before = frame(t_before);
        injector.tap(&mut before, &truth);
        prop_assert_eq!(before, frame(t_before), "mutated before the window opened");

        // Run a few in-window frames (populates stateful buffers).
        for i in 0..3 {
            let mut during = frame(start + len * (i as f64 + 0.5) / 4.0);
            injector.tap(&mut during, &truth);
        }

        let t_after = start + len + t_after_off;
        let mut after = frame(t_after);
        injector.tap(&mut after, &truth);
        prop_assert_eq!(after, frame(t_after), "kept mutating after the window closed");
    }

    #[test]
    fn only_the_target_channel_is_touched(
        attack_idx in 0usize..11,
        t in 0.0f64..100.0,
    ) {
        use adassure_attacks::Channel;
        let spec = standard_attacks(0.0)[attack_idx];
        let mut injector = spec.injector(1);
        let truth = VehicleState::at([10.0, -3.0], 0.4);
        let clean = frame(t);
        let mut attacked = clean;
        injector.tap(&mut attacked, &truth);
        match spec.kind.channel() {
            Channel::Gnss => {
                prop_assert_eq!(attacked.wheel_speed, clean.wheel_speed);
                prop_assert_eq!(attacked.imu_yaw_rate, clean.imu_yaw_rate);
                prop_assert_eq!(attacked.compass, clean.compass);
            }
            Channel::WheelSpeed => {
                prop_assert_eq!(attacked.gnss, clean.gnss);
                prop_assert_eq!(attacked.imu_yaw_rate, clean.imu_yaw_rate);
                prop_assert_eq!(attacked.compass, clean.compass);
            }
            Channel::ImuYaw => {
                prop_assert_eq!(attacked.gnss, clean.gnss);
                prop_assert_eq!(attacked.wheel_speed, clean.wheel_speed);
                prop_assert_eq!(attacked.compass, clean.compass);
            }
            Channel::Compass => {
                prop_assert_eq!(attacked.gnss, clean.gnss);
                prop_assert_eq!(attacked.wheel_speed, clean.wheel_speed);
                prop_assert_eq!(attacked.imu_yaw_rate, clean.imu_yaw_rate);
            }
        }
    }

    #[test]
    fn scaling_by_one_is_identity(attack_idx in 0usize..11) {
        let kind = standard_attacks(0.0)[attack_idx].kind;
        prop_assert_eq!(scale_attack(kind, 1.0), kind);
    }

    #[test]
    fn bias_injection_is_exact(
        dx in -100.0f64..100.0,
        dy in -100.0f64..100.0,
        t in 0.0f64..100.0,
    ) {
        let mut injector = AttackInjector::new(
            AttackKind::GnssBias { offset: Vec2::new(dx, dy) },
            Window::always(),
            0,
        );
        let truth = VehicleState::at([10.0, -3.0], 0.4);
        let mut f = frame(t);
        injector.tap(&mut f, &truth);
        let fix = f.gnss.unwrap();
        prop_assert!((fix.x - (10.0 + dx)).abs() < 1e-12);
        prop_assert!((fix.y - (-3.0 + dy)).abs() < 1e-12);
    }

    #[test]
    fn wheel_speed_never_goes_negative(factor in -5.0f64..5.0, t in 0.0f64..10.0) {
        let mut injector = AttackInjector::new(
            AttackKind::WheelSpeedScale { factor },
            Window::always(),
            0,
        );
        let truth = VehicleState::at([0.0, 0.0], 0.0);
        let mut f = frame(t);
        injector.tap(&mut f, &truth);
        prop_assert!(f.wheel_speed >= 0.0);
    }
}
