//! Shared experiment plumbing for the ADAssure benchmark harnesses.
//!
//! Every table/figure binary in `src/bin/` is a thin loop over
//! [`run_attacked`] / [`run_clean`] plus formatting; the mechanics of wiring
//! scenario + controller + attack + catalog live here so all experiments
//! agree on them.

#![warn(missing_docs)]

use adassure_attacks::campaign::AttackSpec;
use adassure_control::ControllerKind;
use adassure_core::catalog::{self, CatalogConfig};
use adassure_core::{checker, Assertion, CheckReport};
use adassure_scenarios::{run, Scenario};
use adassure_sim::engine::SimOutput;
use adassure_sim::SimError;

/// The catalog configuration matched to a scenario: goal-distance for open
/// routes (enabling A12), defaults otherwise.
pub fn catalog_config_for(scenario: &Scenario) -> CatalogConfig {
    let config = CatalogConfig::default();
    if scenario.track.is_closed() {
        config
    } else {
        config.with_goal_distance(scenario.route_length())
    }
}

/// The standard catalog for a scenario.
pub fn catalog_for(scenario: &Scenario) -> Vec<Assertion> {
    catalog::build(&catalog_config_for(scenario))
}

/// Runs a clean (golden) pass and checks it against `cat`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_clean(
    scenario: &Scenario,
    controller: ControllerKind,
    seed: u64,
    cat: &[Assertion],
) -> Result<(SimOutput, CheckReport), SimError> {
    let out = run::clean(scenario, controller, seed)?;
    let report = checker::check(cat, &out.trace);
    Ok((out, report))
}

/// Runs an attacked pass and checks it against `cat`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_attacked(
    scenario: &Scenario,
    controller: ControllerKind,
    attack: &AttackSpec,
    seed: u64,
    cat: &[Assertion],
) -> Result<(SimOutput, CheckReport), SimError> {
    let mut injector = attack.injector(seed);
    let out = run::with_tap(scenario, controller, seed, &mut injector)?;
    let report = checker::check(cat, &out.trace);
    Ok((out, report))
}

/// The standard attack set activating at the scenario's canonical attack
/// start.
pub fn attacks_for(scenario: &Scenario) -> Vec<AttackSpec> {
    adassure_attacks::campaign::standard_attacks(scenario.attack_start)
}

/// Formats a row of a fixed-width text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:<w$} "));
    }
    out.trim_end().to_owned()
}

/// Formats mean ± std for a sample of values; `-` when empty.
pub fn fmt_mean_std(values: &[f64]) -> String {
    if values.is_empty() {
        return "-".to_owned();
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    format!("{mean:.2}±{:.2}", var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_scenarios::ScenarioKind;

    #[test]
    fn catalog_config_matches_topology() {
        let open = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        assert!(catalog_config_for(&open).goal_distance.is_some());
        let closed = Scenario::of_kind(ScenarioKind::Circle).unwrap();
        assert!(catalog_config_for(&closed).goal_distance.is_none());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(
            row(&["a".into(), "bb".into()], &[3, 3]),
            "a   bb"
        );
        assert_eq!(fmt_mean_std(&[]), "-");
        assert_eq!(fmt_mean_std(&[2.0, 2.0]), "2.00±0.00");
    }
}
