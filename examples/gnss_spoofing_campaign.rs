//! A full GNSS attack campaign: every GNSS attack class against the urban
//! loop, with per-attack detection latency, fired assertions and diagnosis.
//!
//! Run with: `cargo run --release --example gnss_spoofing_campaign`

use adassure::attacks::campaign::standard_attacks;
use adassure::attacks::Channel;
use adassure::control::ControllerKind;
use adassure::core::{catalog, checker, diagnosis};
use adassure::scenarios::{run, Scenario, ScenarioKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::of_kind(ScenarioKind::UrbanLoop)?;
    let controller = ControllerKind::Stanley;
    let cat = catalog::build(&catalog::CatalogConfig::default());
    let seeds = [1u64, 2, 3];

    println!(
        "GNSS campaign on `{}` with the {} stack ({} seeds)\n",
        scenario.kind,
        controller,
        seeds.len()
    );
    println!(
        "{:<14} {:>9} {:>9} {:<12} assertions fired",
        "attack", "detected", "latency", "top-cause"
    );

    for attack in standard_attacks(scenario.attack_start)
        .into_iter()
        .filter(|a| a.kind.channel() == Channel::Gnss)
    {
        let mut detected = 0usize;
        let mut latencies = Vec::new();
        let mut fired = std::collections::BTreeSet::new();
        let mut top_causes = Vec::new();
        for &seed in &seeds {
            let mut injector = attack.injector(seed);
            let out = run::with_tap(&scenario, controller, seed, &mut injector)?;
            let report = checker::check(&cat, &out.trace);
            if let Some(latency) = report.detection_latency(attack.window.start) {
                detected += 1;
                latencies.push(latency);
            }
            fired.extend(report.violated_ids().iter().map(|i| i.as_str().to_owned()));
            if let Some(top) = diagnosis::diagnose(&report).top() {
                top_causes.push(top);
            }
        }
        let mean_latency = if latencies.is_empty() {
            "-".to_owned()
        } else {
            format!(
                "{:.2}s",
                latencies.iter().sum::<f64>() / latencies.len() as f64
            )
        };
        let top = top_causes
            .first()
            .map(|c| c.name().to_owned())
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{:<14} {:>6}/{:<2} {:>9} {:<12} {:?}",
            attack.name(),
            detected,
            seeds.len(),
            mean_latency,
            top,
            fired
        );
    }
    Ok(())
}
