//! Compare the four lateral controllers under the same attack: tracking
//! quality and how quickly the catalog flags the compromise for each.
//!
//! Run with: `cargo run --release --example controller_comparison`

use adassure::attacks::{campaign::AttackSpec, AttackKind, Window};
use adassure::control::ControllerKind;
use adassure::core::{catalog, checker};
use adassure::scenarios::{run, Scenario, ScenarioKind};
use adassure::sim::geometry::Vec2;
use adassure::trace::stats::SummaryStats;
use adassure::trace::well_known as sig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve)?;
    let cfg = catalog::CatalogConfig::default().with_goal_distance(scenario.route_length());
    let cat = catalog::build(&cfg);
    let attack = AttackSpec::new(
        AttackKind::GnssDrift {
            rate: Vec2::new(0.4, 0.3),
        },
        Window::from_start(scenario.attack_start),
    );
    let seed = 7;

    println!(
        "scenario `{}`, attack `{}` from t = {:.0} s\n",
        scenario.kind,
        attack.name(),
        attack.window.start
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "controller", "goal", "rms xtrack", "max |xtrack|", "latency"
    );
    for controller in ControllerKind::ALL {
        // Clean baseline for tracking quality.
        let clean = run::clean(&scenario, controller, seed)?;
        let xtrack = clean.trace.require(sig::TRUE_XTRACK_ERR)?;
        let stats = SummaryStats::from_series(xtrack)
            .ok_or_else(|| format!("empty clean run for {}", controller.name()))?;

        // Attacked run for detection latency.
        let mut injector = attack.injector(seed);
        let attacked = run::with_tap(&scenario, controller, seed, &mut injector)?;
        let report = checker::check(&cat, &attacked.trace);
        let latency = report
            .detection_latency(attack.window.start)
            .map(|l| format!("{l:.2}s"))
            .unwrap_or_else(|| "miss".to_owned());

        println!(
            "{:<14} {:>10} {:>11.3}m {:>11.3}m {:>10}",
            controller.name(),
            if clean.reached_goal {
                "reached"
            } else {
                "timeout"
            },
            stats.rms,
            stats.max.abs().max(stats.min.abs()),
            latency
        );
    }
    println!("\n(the drift attack is the stealthiest in the taxonomy: it is only");
    println!(" caught once the spoofed route bends the estimated errors — latency");
    println!(" is tens of seconds, and controllers with tighter tracking flag it sooner)");
    Ok(())
}
