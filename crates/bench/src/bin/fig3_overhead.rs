//! **F3 — Online monitoring overhead**: wall-clock cost of the incremental
//! checker per control cycle as a function of catalog size, against the
//! 10 ms cycle budget of a 100 Hz loop.
//!
//! (Criterion micro-benchmarks of the same path live in `benches/checker.rs`;
//! this binary prints the paper-style table.)
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin fig3_overhead`

use std::time::Instant;

use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_core::{checker, OnlineChecker};
use adassure_exp::campaign::{execute, standard_catalog};
use adassure_exp::RunSpec;
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).expect("library scenario");
    let full_catalog = standard_catalog(&scenario);
    // The trace under replay comes from the campaign executor, like every
    // other harness's runs.
    let spec = RunSpec {
        index: 0,
        scenario: scenario.kind,
        controller: ControllerKind::PurePursuit,
        estimator: EstimatorKind::Complementary,
        attack: None,
        seed: 1,
    };
    let (out, _) = execute(&spec, &full_catalog).expect("clean run");
    let events = checker::events(&out.trace);

    // Pre-group events into cycles so the measured loop is only the checker.
    let cycles: Vec<(f64, Vec<(adassure_trace::SignalId, f64)>)> = checker::Cycles::new(&events)
        .map(|(t, cycle)| (t, cycle.iter().map(|&(_, id, v)| (id.clone(), v)).collect()))
        .collect();

    println!(
        "F3: online checker cost per 100 Hz control cycle ({} cycles replayed)\n",
        cycles.len()
    );
    println!(
        "{:>12} {:>14} {:>16} {:>16}",
        "assertions", "ns/cycle", "us/cycle", "% of 10ms budget"
    );

    for n in [1usize, 4, 8, full_catalog.len()] {
        let catalog: Vec<_> = full_catalog.iter().take(n).cloned().collect();
        // Warm-up pass, then measure.
        for _ in 0..2 {
            run_once(&catalog, &cycles);
        }
        let repeats = 5;
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let elapsed = run_once(&catalog, &cycles);
            best = best.min(elapsed);
        }
        let ns_per_cycle = best * 1e9 / cycles.len() as f64;
        println!(
            "{:>12} {:>14.0} {:>16.3} {:>15.4}%",
            n,
            ns_per_cycle,
            ns_per_cycle / 1000.0,
            ns_per_cycle / 10_000_000.0 * 100.0
        );
    }
    println!("\n(the full catalog costs well under 0.1 % of the cycle budget, so");
    println!(" running ADAssure online is effectively free for the control loop.)");
}

fn run_once(
    catalog: &[adassure_core::Assertion],
    cycles: &[(f64, Vec<(adassure_trace::SignalId, f64)>)],
) -> f64 {
    let mut checker = OnlineChecker::new(catalog.iter().cloned());
    let start = Instant::now();
    for (t, updates) in cycles {
        checker.begin_cycle(*t).unwrap();
        for (id, v) in updates {
            checker.update(id.clone(), *v);
        }
        checker.end_cycle();
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(checker.violations().len());
    elapsed
}
