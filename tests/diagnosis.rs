//! Diagnosis integration: the cause–effect engine localises attacked
//! channels from violation patterns alone.

use adassure::attacks::campaign::standard_attacks;
use adassure::attacks::{AttackKind, Channel};
use adassure::control::ControllerKind;
use adassure::core::diagnosis::{self, CauseTag};
use adassure::core::{catalog, checker};
use adassure::scenarios::{run, Scenario, ScenarioKind};

fn cause_of(channel: Channel) -> CauseTag {
    match channel {
        Channel::Gnss => CauseTag::GnssChannel,
        Channel::WheelSpeed => CauseTag::WheelSpeedChannel,
        Channel::ImuYaw => CauseTag::ImuYawChannel,
        Channel::Compass => CauseTag::CompassChannel,
    }
}

#[test]
fn top2_diagnosis_localises_most_attacks() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).unwrap();
    let cat = catalog::build(
        &catalog::CatalogConfig::default().with_goal_distance(scenario.route_length()),
    );
    let mut total = 0usize;
    let mut top1 = 0usize;
    let mut top2 = 0usize;
    for attack in standard_attacks(scenario.attack_start) {
        // Slow drift is the documented stealthy case: it may surface as a
        // control-loop anomaly. Scored separately below.
        if matches!(attack.kind, AttackKind::GnssDrift { .. }) {
            continue;
        }
        let mut injector = attack.injector(1);
        let out = run::with_tap(&scenario, ControllerKind::PurePursuit, 1, &mut injector).unwrap();
        let report = checker::check(&cat, &out.trace);
        let verdict = diagnosis::diagnose(&report);
        let truth = cause_of(attack.kind.channel());
        total += 1;
        top1 += usize::from(verdict.top() == Some(truth));
        top2 += usize::from(verdict.contains_in_top(truth, 2));
    }
    assert!(
        top1 * 10 >= total * 8,
        "top-1 accuracy too low: {top1}/{total}"
    );
    assert_eq!(top2, total, "the true channel must always be in the top 2");
}

#[test]
fn per_channel_signature_attacks_diagnose_correctly() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).unwrap();
    let cat = catalog::build(
        &catalog::CatalogConfig::default().with_goal_distance(scenario.route_length()),
    );
    let cases = [
        ("gnss_jump", CauseTag::GnssChannel),
        ("gnss_dropout", CauseTag::GnssChannel),
        ("wheel_speed_scale", CauseTag::WheelSpeedChannel),
        ("imu_yaw_bias", CauseTag::ImuYawChannel),
        ("compass_bias", CauseTag::CompassChannel),
    ];
    let attacks = standard_attacks(scenario.attack_start);
    for (name, expected) in cases {
        let attack = attacks
            .iter()
            .find(|a| a.name() == name)
            .expect("attack in catalog");
        let mut injector = attack.injector(2);
        let out = run::with_tap(&scenario, ControllerKind::PurePursuit, 2, &mut injector).unwrap();
        let report = checker::check(&cat, &out.trace);
        let verdict = diagnosis::diagnose(&report);
        assert_eq!(
            verdict.top(),
            Some(expected),
            "{name}: ranking {:?} (violations {:?})",
            verdict.ranking,
            report.violated_ids()
        );
    }
}

#[test]
fn clean_runs_produce_no_verdict() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let cat = catalog::build(
        &catalog::CatalogConfig::default().with_goal_distance(scenario.route_length()),
    );
    let out = run::clean(&scenario, ControllerKind::Mpc, 3).unwrap();
    let report = checker::check(&cat, &out.trace);
    let verdict = diagnosis::diagnose(&report);
    assert_eq!(verdict.top(), None);
}

#[test]
fn diagnosis_scores_are_a_probability_distribution() {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
    let cat = catalog::build(
        &catalog::CatalogConfig::default().with_goal_distance(scenario.route_length()),
    );
    let attacks = standard_attacks(scenario.attack_start);
    let attack = attacks.iter().find(|a| a.name() == "gnss_noise").unwrap();
    let mut injector = attack.injector(4);
    let out = run::with_tap(&scenario, ControllerKind::Stanley, 4, &mut injector).unwrap();
    let report = checker::check(&cat, &out.trace);
    let verdict = diagnosis::diagnose(&report);
    let total: f64 = verdict.ranking.iter().map(|c| c.score).sum();
    assert!((total - 1.0).abs() < 1e-9);
    assert!(verdict.ranking.iter().all(|c| c.score >= 0.0));
}
