//! End-to-end pins for the time-travel debugger: the live session must be
//! indistinguishable from the campaign engine, and checkpoint travel must
//! be bit-identical to running straight through.

use adassure_debug::{DebugSession, DebugSpec, SimCheckpoint};
use adassure_exp::campaign::{execute, standard_catalog};
use adassure_exp::grid::{AttackSet, Grid};
use adassure_exp::RunSpec;
use adassure_scenarios::Scenario;

/// A known-violating campaign cell (gnss_bias on the straight, seed 1).
fn violating_cell() -> RunSpec {
    Grid::new().attacks(AttackSet::Standard).seeds([1]).cells()[0]
}

#[test]
fn debug_session_report_matches_campaign_execute() {
    let cell = violating_cell();
    let scenario = Scenario::of_kind(cell.scenario).expect("standard scenario");
    let (output, report) = execute(&cell, &standard_catalog(&scenario)).expect("campaign run");

    let spec = DebugSpec::from_run_spec(&cell);
    let mut session = DebugSession::new(&spec, 1000).expect("session");
    session.run_to_end().expect("run");
    let (debug_output, debug_report) = session.finish();

    assert_eq!(debug_output.trace, output.trace, "traces diverged");
    assert_eq!(debug_output.steps, output.steps);
    assert_eq!(
        debug_report, report,
        "live checker diverged from the campaign's offline check"
    );
}

#[test]
fn backward_time_travel_is_bit_identical() {
    let spec = DebugSpec::from_run_spec(&violating_cell());

    // Reference: straight run to the end.
    let mut reference = DebugSession::new(&spec, 500).expect("session");
    reference.run_to_end().expect("run");
    let (ref_output, ref_report) = reference.finish();

    // Traveller: forward past the probe point, rewind (forcing a
    // checkpoint restore + fast-forward), inspect, then run out.
    let mut traveller = DebugSession::new(&spec, 500).expect("session");
    traveller.run_to(3100).expect("forward");
    let first_visit = traveller.inspect();
    traveller.run_to(4200).expect("further");
    traveller.run_to(3100).expect("rewind");
    assert_eq!(traveller.cycle(), 3100);
    let second_visit = traveller.inspect();

    assert_eq!(second_visit.cycle, first_visit.cycle);
    assert_eq!(second_visit.time, first_visit.time);
    assert_eq!(second_visit.vehicle, first_visit.vehicle);
    assert_eq!(second_visit.signals, first_visit.signals);
    assert_eq!(second_visit.assertions, first_visit.assertions);
    assert_eq!(second_visit.violations, first_visit.violations);

    traveller.run_to_end().expect("run out");
    let (travel_output, travel_report) = traveller.finish();
    assert_eq!(travel_output.trace, ref_output.trace, "traces diverged");
    assert_eq!(travel_report, ref_report, "reports diverged");
}

#[test]
fn encoded_checkpoint_resumes_in_a_fresh_session() {
    let spec = DebugSpec::from_run_spec(&violating_cell());

    let mut original = DebugSession::new(&spec, 500).expect("session");
    original.run_to(2500).expect("forward");
    let bytes = original.capture().encode();
    original.run_to_end().expect("run out");
    let (ref_output, ref_report) = original.finish();

    let decoded = SimCheckpoint::decode(&bytes).expect("decode");
    assert_eq!(decoded.cycle, 2500);
    let mut resumed = DebugSession::new(&spec, 500).expect("fresh session");
    resumed.restore_checkpoint(&decoded).expect("restore");
    assert_eq!(resumed.cycle(), 2500);
    resumed.run_to_end().expect("run out");
    let (res_output, res_report) = resumed.finish();

    assert_eq!(res_output.trace, ref_output.trace, "traces diverged");
    assert_eq!(res_report, ref_report, "reports diverged");
}

#[test]
fn run_to_past_the_end_is_a_typed_error() {
    let spec = DebugSpec::from_run_spec(&violating_cell());
    let mut session = DebugSession::new(&spec, 1000).expect("session");
    let err = session.run_to(u64::MAX).expect_err("cannot reach");
    assert!(
        matches!(err, adassure_debug::DebugError::BadSpec(_)),
        "unexpected error: {err}"
    );
}
