//! Aggregation helpers shared by every experiment harness.
//!
//! All statistics here are over *samples* of runs, so spread is the sample
//! standard deviation (the `n - 1` denominator); a single observation has
//! zero spread by convention.

use crate::record::RunRecord;

/// The arithmetic mean; `None` for an empty sample.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// The sample standard deviation (`n - 1` denominator); `None` for an empty
/// sample and `0.0` for a single observation.
pub fn sample_std(values: &[f64]) -> Option<f64> {
    let mean = mean(values)?;
    if values.len() < 2 {
        return Some(0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

/// Formats `mean ± std` for a sample of values; `-` when empty.
pub fn fmt_mean_std(values: &[f64]) -> String {
    match (mean(values), sample_std(values)) {
        (Some(mean), Some(std)) => format!("{mean:.2}±{std:.2}"),
        _ => "-".to_owned(),
    }
}

/// The `p`-th percentile (nearest-rank on the sorted sample, `p` in
/// `[0, 100]`); `None` for an empty sample.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// The 95th-percentile of a sample (`None` when empty).
pub fn p95(values: &[f64]) -> Option<f64> {
    percentile(values, 95.0)
}

/// Counts `(detected, total)` over a set of run records.
pub fn detections<'a>(runs: impl IntoIterator<Item = &'a RunRecord>) -> (usize, usize) {
    let mut detected = 0;
    let mut total = 0;
    for run in runs {
        total += 1;
        detected += usize::from(run.detected);
    }
    (detected, total)
}

/// The fraction of runs detected (`0.0` for an empty set).
pub fn detection_rate<'a>(runs: impl IntoIterator<Item = &'a RunRecord>) -> f64 {
    let (detected, total) = detections(runs);
    if total == 0 {
        0.0
    } else {
        detected as f64 / total as f64
    }
}

/// The detection latencies of the detected runs, in iteration order.
pub fn latencies<'a>(runs: impl IntoIterator<Item = &'a RunRecord>) -> Vec<f64> {
    runs.into_iter()
        .filter_map(|run| run.detection_latency)
        .collect()
}

/// Counts `(hits, total)` of runs whose top-`k` diagnosis candidates
/// contain the attacked channel's true cause.
pub fn top_k_hits<'a>(runs: impl IntoIterator<Item = &'a RunRecord>, k: usize) -> (usize, usize) {
    let mut hits = 0;
    let mut total = 0;
    for run in runs {
        total += 1;
        hits += usize::from(run.diagnosis_in_top(k));
    }
    (hits, total)
}

/// Formats `hits/total` as a whole-number percentage (`-` when `total` is
/// zero).
pub fn percent(hits: usize, total: usize) -> String {
    if total == 0 {
        "-".to_owned()
    } else {
        format!("{}%", (100.0 * hits as f64 / total as f64).round() as u32)
    }
}

/// Formats a row of a fixed-width text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:<w$} "));
    }
    out.trim_end().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_sample_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[3.0]), Some(3.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(sample_std(&[]), None);
        // A single observation has no spread by convention.
        assert_eq!(sample_std(&[4.2]), Some(0.0));
        // Sample (not population) variance: [1, 3] → var 2, std √2.
        let std = sample_std(&[1.0, 3.0]).unwrap();
        assert!((std - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fmt_mean_std_formats() {
        assert_eq!(fmt_mean_std(&[]), "-");
        assert_eq!(fmt_mean_std(&[2.0, 2.0]), "2.00±0.00");
        assert_eq!(fmt_mean_std(&[1.0, 3.0]), "2.00±1.41");
    }

    #[test]
    fn percentiles_nearest_rank() {
        assert_eq!(p95(&[]), None);
        assert_eq!(p95(&[7.0]), Some(7.0));
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p95(&values), Some(95.0));
        assert_eq!(percentile(&values, 50.0), Some(50.0));
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        assert_eq!(percentile(&values, 100.0), Some(100.0));
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0, 0), "-");
        assert_eq!(percent(2, 3), "67%");
        assert_eq!(percent(3, 3), "100%");
    }

    #[test]
    fn row_pads_fixed_width() {
        assert_eq!(row(&["a".into(), "bb".into()], &[3, 3]), "a   bb");
    }
}
