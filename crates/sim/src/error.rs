use std::fmt;

use adassure_trace::TraceError;

/// Errors produced by simulator construction and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A track was built from fewer than two distinct waypoints, or with a
    /// non-positive resample spacing.
    InvalidTrack(String),
    /// A configuration value was out of range (non-positive `dt`, negative
    /// duration, non-finite parameter, ...).
    InvalidConfig(String),
    /// The physics integrator produced a non-finite state, usually because a
    /// driver returned non-finite controls.
    NumericalDivergence {
        /// Simulation time at which divergence was detected (s).
        time: f64,
    },
    /// Trace recording failed.
    Trace(TraceError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTrack(msg) => write!(f, "invalid track: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::NumericalDivergence { time } => {
                write!(f, "simulation diverged to a non-finite state at t={time}")
            }
            SimError::Trace(err) => write!(f, "trace recording failed: {err}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Trace(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TraceError> for SimError {
    fn from(err: TraceError) -> Self {
        SimError::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::InvalidTrack("too short".into())
            .to_string()
            .contains("too short"));
        assert!(SimError::NumericalDivergence { time: 1.5 }
            .to_string()
            .contains("t=1.5"));
    }

    #[test]
    fn trace_errors_convert() {
        let err: SimError = TraceError::UnknownSignal("x".into()).into();
        assert!(matches!(err, SimError::Trace(_)));
        use std::error::Error;
        assert!(err.source().is_some());
    }
}
