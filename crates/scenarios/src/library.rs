//! Track geometry of the standard scenarios.

use adassure_sim::geometry::Vec2;
use adassure_sim::track::Track;
use adassure_sim::SimError;

const SPACING: f64 = 1.0;

/// 400 m straight road heading east.
pub fn straight() -> Result<Track, SimError> {
    Track::line([0.0, 0.0], [400.0, 0.0], SPACING)
}

/// S-curve: east, bend left, bend right, east again (~350 m).
pub fn s_curve() -> Result<Track, SimError> {
    let mut points: Vec<Vec2> = Vec::new();
    // First straight.
    for i in 0..=8 {
        points.push(Vec2::new(f64::from(i) * 10.0, 0.0));
    }
    // Left arc (radius 40, quarter turn) centred at (80, 40).
    let c1 = Vec2::new(80.0, 40.0);
    for i in 1..=12 {
        let a = -std::f64::consts::FRAC_PI_2 + std::f64::consts::FRAC_PI_2 * f64::from(i) / 12.0;
        points.push(c1 + Vec2::from_angle(a) * 40.0);
    }
    // Right arc (radius 40, quarter turn) back to eastbound, centred at (160, 40).
    let c2 = Vec2::new(160.0, 40.0);
    for i in 1..=12 {
        let a = std::f64::consts::PI - std::f64::consts::FRAC_PI_2 * f64::from(i) / 12.0;
        points.push(c2 + Vec2::from_angle(a) * 40.0);
    }
    // Final straight.
    for i in 1..=10 {
        points.push(Vec2::new(160.0 + f64::from(i) * 10.0, 80.0));
    }
    Track::from_waypoints(points, SPACING, false)
}

/// Straight road with a 3.5 m lane-change offset between x = 150 and 180.
pub fn lane_change() -> Result<Track, SimError> {
    let mut points: Vec<Vec2> = Vec::new();
    for i in 0..=15 {
        points.push(Vec2::new(f64::from(i) * 10.0, 0.0));
    }
    // Smooth sigmoid transition over 30 m.
    for i in 1..=6 {
        let x = 150.0 + f64::from(i) * 5.0;
        let s = f64::from(i) / 6.0;
        let y = 3.5 * (3.0 * s * s - 2.0 * s * s * s); // smoothstep
        points.push(Vec2::new(x, y));
    }
    for i in 1..=15 {
        points.push(Vec2::new(180.0 + f64::from(i) * 10.0, 3.5));
    }
    Track::from_waypoints(points, SPACING, false)
}

/// Closed urban block: 120 × 80 m rectangle with 20 m rounded corners.
pub fn urban_loop() -> Result<Track, SimError> {
    let r = 20.0;
    let (w, h) = (120.0, 80.0);
    let mut points: Vec<Vec2> = Vec::new();
    let corner = |centre: Vec2, start: f64, out: &mut Vec<Vec2>| {
        for i in 0..=8 {
            let a = start + std::f64::consts::FRAC_PI_2 * f64::from(i) / 8.0;
            out.push(centre + Vec2::from_angle(a) * r);
        }
    };
    // Bottom edge west→east.
    for i in 0..=8 {
        points.push(Vec2::new(r + f64::from(i) * (w - 2.0 * r) / 8.0, 0.0));
    }
    corner(
        Vec2::new(w - r, r),
        -std::f64::consts::FRAC_PI_2,
        &mut points,
    );
    // Right edge south→north.
    for i in 1..=6 {
        points.push(Vec2::new(w, r + f64::from(i) * (h - 2.0 * r) / 6.0));
    }
    corner(Vec2::new(w - r, h - r), 0.0, &mut points);
    // Top edge east→west.
    for i in 1..=8 {
        points.push(Vec2::new(w - r - f64::from(i) * (w - 2.0 * r) / 8.0, h));
    }
    corner(
        Vec2::new(r, h - r),
        std::f64::consts::FRAC_PI_2,
        &mut points,
    );
    // Left edge north→south.
    for i in 1..=6 {
        points.push(Vec2::new(0.0, h - r - f64::from(i) * (h - 2.0 * r) / 6.0));
    }
    corner(Vec2::new(r, r), std::f64::consts::PI, &mut points);
    Track::from_waypoints(points, SPACING, true)
}

/// Closed circle of 25 m radius.
pub fn circle() -> Result<Track, SimError> {
    Track::circle([0.0, 25.0], 25.0, SPACING)
}

/// Out-and-back hairpin: 120 m east, 180° turn of 25 m radius, 120 m west.
pub fn hairpin() -> Result<Track, SimError> {
    let mut points: Vec<Vec2> = Vec::new();
    for i in 0..=12 {
        points.push(Vec2::new(f64::from(i) * 10.0, 0.0));
    }
    let c = Vec2::new(120.0, 25.0);
    for i in 1..=16 {
        let a = -std::f64::consts::FRAC_PI_2 + std::f64::consts::PI * f64::from(i) / 16.0;
        points.push(c + Vec2::from_angle(a) * 25.0);
    }
    for i in 1..=12 {
        points.push(Vec2::new(120.0 - f64::from(i) * 10.0, 50.0));
    }
    Track::from_waypoints(points, SPACING, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tracks_build_with_expected_topology() {
        assert!(!straight().unwrap().is_closed());
        assert!(!s_curve().unwrap().is_closed());
        assert!(!lane_change().unwrap().is_closed());
        assert!(urban_loop().unwrap().is_closed());
        assert!(circle().unwrap().is_closed());
        assert!(!hairpin().unwrap().is_closed());
    }

    #[test]
    fn lengths_are_plausible() {
        assert!((straight().unwrap().length() - 400.0).abs() < 2.0);
        let s = s_curve().unwrap().length();
        assert!(s > 280.0 && s < 400.0, "{s}");
        let u = urban_loop().unwrap().length();
        // Perimeter ≈ 2(80+40) + 2(120-40) + 2πr ≈ 366.
        assert!(u > 330.0 && u < 400.0, "{u}");
        let h = hairpin().unwrap().length();
        assert!(h > 300.0 && h < 350.0, "{h}");
    }

    #[test]
    fn curvatures_are_bounded_for_the_vehicle() {
        // Minimum turn radius of the car: L / tan(max_steer) ≈ 4.4 m. All
        // scenario curvature must stay well under 1/4.4.
        for track in [
            s_curve().unwrap(),
            urban_loop().unwrap(),
            hairpin().unwrap(),
        ] {
            let mut worst = 0.0f64;
            let mut s = 0.0;
            while s < track.length() {
                worst = worst.max(track.curvature_at(s).abs());
                s += 1.0;
            }
            // Discretisation kinks at straight→arc joints spike the local
            // estimate; anything well below the vehicle limit (~0.23) is fine.
            assert!(worst < 0.12, "curvature {worst} too sharp");
        }
    }

    #[test]
    fn lane_change_offset_is_reached() {
        let t = lane_change().unwrap();
        let end = t.point_at(t.length());
        assert!((end.y - 3.5).abs() < 0.1, "{end:?}");
    }
}
