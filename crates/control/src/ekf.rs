//! Extended Kalman filter state estimator.
//!
//! The alternative to the [`crate::estimator`] complementary filter: a
//! textbook EKF over the state `[x, y, θ, v]` with the IMU yaw rate as a
//! control input, and wheel-speed / compass / GNSS measurement updates.
//! All linear algebra is hand-rolled over fixed 4×4 arrays — the state is
//! small enough that a matrix library would be pure overhead.
//!
//! The filter optionally applies **innovation gating** (reject GNSS fixes
//! whose Mahalanobis distance exceeds a χ² bound). Gating is the classic
//! robustness mechanism — and the estimator-ablation experiment shows its
//! double edge: it masks spoofed fixes from the *behavioural* assertions
//! while making the *innovation* assertion fire even harder.

use serde::{Deserialize, Serialize};

use adassure_sim::geometry::{angle_diff, wrap_angle, Vec2};
use adassure_sim::sensor::SensorFrame;

use crate::Estimate;

type Mat4 = [[f64; 4]; 4];

/// EKF noise configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EkfConfig {
    /// Process noise on position (m²/s).
    pub q_position: f64,
    /// Process noise on heading (rad²/s).
    pub q_heading: f64,
    /// Process noise on speed ((m/s)²/s).
    pub q_speed: f64,
    /// GNSS measurement variance per axis (m²).
    pub r_gnss: f64,
    /// Wheel-speed measurement variance ((m/s)²).
    pub r_wheel: f64,
    /// Compass measurement variance (rad²).
    pub r_compass: f64,
    /// Reject GNSS fixes with squared Mahalanobis distance above this
    /// bound; `None` disables gating. 9.21 is the 99 % χ² bound for two
    /// degrees of freedom.
    pub gnss_gate: Option<f64>,
}

impl EkfConfig {
    /// Defaults matched to [`adassure_sim::sensor::SensorConfig::automotive`].
    pub fn standard() -> Self {
        EkfConfig {
            q_position: 0.05,
            q_heading: 0.005,
            q_speed: 0.5,
            r_gnss: 0.09, // (0.3 m)²
            r_wheel: 0.0025,
            r_compass: 1e-4,
            gnss_gate: None,
        }
    }

    /// Standard configuration with 99 % innovation gating enabled.
    pub fn gated() -> Self {
        EkfConfig {
            gnss_gate: Some(9.21),
            ..EkfConfig::standard()
        }
    }
}

impl Default for EkfConfig {
    fn default() -> Self {
        EkfConfig::standard()
    }
}

/// The EKF estimator. Drop-in behavioural equivalent of
/// [`crate::estimator::Estimator`].
#[derive(Debug, Clone)]
pub struct Ekf {
    config: EkfConfig,
    /// State `[x, y, θ, v]`.
    state: [f64; 4],
    covariance: Mat4,
    initialized: bool,
    last_innovation: f64,
    rejected_fixes: usize,
}

/// Plain-data snapshot of an [`Ekf`]'s mutable state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EkfState {
    /// State vector `[x, y, θ, v]`.
    pub state: [f64; 4],
    /// State covariance.
    pub covariance: [[f64; 4]; 4],
    /// Whether the first GNSS fix has been ingested.
    pub initialized: bool,
    /// Magnitude of the most recent GNSS innovation (m).
    pub last_innovation: f64,
    /// GNSS fixes rejected by the innovation gate so far.
    pub rejected_fixes: u64,
}

impl Ekf {
    /// Creates a filter awaiting its first GNSS fix.
    pub fn new(config: EkfConfig) -> Self {
        Ekf {
            config,
            state: [0.0; 4],
            covariance: scaled_identity(100.0),
            initialized: false,
            last_innovation: 0.0,
            rejected_fixes: 0,
        }
    }

    /// Whether the filter has received its first GNSS fix.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Magnitude of the most recent GNSS innovation (m). Gated (rejected)
    /// fixes still report their innovation — that is exactly the signal
    /// assertion A11 needs.
    pub fn last_innovation(&self) -> f64 {
        self.last_innovation
    }

    /// Number of GNSS fixes rejected by the innovation gate so far.
    pub fn rejected_fixes(&self) -> usize {
        self.rejected_fixes
    }

    /// Marginal standard deviation of the position estimate (m), a measure
    /// of filter confidence.
    pub fn position_sigma(&self) -> f64 {
        (self.covariance[0][0] + self.covariance[1][1])
            .max(0.0)
            .sqrt()
    }

    /// Captures the filter's mutable state (the config is not included —
    /// restore pairs a snapshot with an identically-configured filter).
    pub fn state(&self) -> EkfState {
        EkfState {
            state: self.state,
            covariance: self.covariance,
            initialized: self.initialized,
            last_innovation: self.last_innovation,
            rejected_fixes: self.rejected_fixes as u64,
        }
    }

    /// Reinstates a state captured with [`Ekf::state`].
    pub fn restore(&mut self, s: &EkfState) {
        self.state = s.state;
        self.covariance = s.covariance;
        self.initialized = s.initialized;
        self.last_innovation = s.last_innovation;
        self.rejected_fixes = s.rejected_fixes as usize;
    }

    /// Ingests one sensor frame and returns the updated estimate.
    pub fn update(&mut self, frame: &SensorFrame, dt: f64) -> Estimate {
        if !self.initialized {
            if let Some(fix) = frame.gnss {
                self.state = [fix.x, fix.y, frame.compass, frame.wheel_speed];
                self.covariance = scaled_identity(1.0);
                self.covariance[2][2] = 0.05;
                self.covariance[3][3] = 0.25;
                self.initialized = true;
            }
            return self.estimate(frame);
        }

        self.predict(frame.imu_yaw_rate, dt);
        self.update_scalar(3, frame.wheel_speed, self.config.r_wheel, false);
        self.update_scalar(2, frame.compass, self.config.r_compass, true);
        if let Some(fix) = frame.gnss {
            self.update_gnss(fix);
        }
        self.estimate(frame)
    }

    fn predict(&mut self, yaw_rate: f64, dt: f64) {
        let [_, _, theta, v] = self.state;
        let (sin_t, cos_t) = theta.sin_cos();
        self.state[0] += v * cos_t * dt;
        self.state[1] += v * sin_t * dt;
        self.state[2] = wrap_angle(theta + yaw_rate * dt);
        // v: constant-velocity model (wheel updates correct it every cycle).

        // Jacobian F = ∂f/∂x.
        let mut f = scaled_identity(1.0);
        f[0][2] = -v * sin_t * dt;
        f[0][3] = cos_t * dt;
        f[1][2] = v * cos_t * dt;
        f[1][3] = sin_t * dt;

        let mut p = mat_mul(&mat_mul(&f, &self.covariance), &transpose(&f));
        p[0][0] += self.config.q_position * dt;
        p[1][1] += self.config.q_position * dt;
        p[2][2] += self.config.q_heading * dt;
        p[3][3] += self.config.q_speed * dt;
        self.covariance = p;
    }

    /// Scalar measurement update of state component `idx` (`z = x[idx]`).
    #[allow(clippy::needless_range_loop)] // index loops mirror the K/P matrix notation
    fn update_scalar(&mut self, idx: usize, z: f64, r: f64, angular: bool) {
        let innovation = if angular {
            angle_diff(z, self.state[idx])
        } else {
            z - self.state[idx]
        };
        let s = self.covariance[idx][idx] + r;
        if s <= 0.0 {
            return;
        }
        // K = P · Hᵀ / s where H selects component idx.
        let mut k = [0.0; 4];
        for (row, k_slot) in k.iter_mut().enumerate() {
            *k_slot = self.covariance[row][idx] / s;
        }
        for row in 0..4 {
            self.state[row] += k[row] * innovation;
        }
        self.state[2] = wrap_angle(self.state[2]);
        // P ← (I − K·H) P : subtract the outer product column-wise.
        let p_row: [f64; 4] = std::array::from_fn(|col| self.covariance[idx][col]);
        for row in 0..4 {
            for col in 0..4 {
                self.covariance[row][col] -= k[row] * p_row[col];
            }
        }
    }

    #[allow(clippy::needless_range_loop)] // index loops mirror the K/P matrix notation
    fn update_gnss(&mut self, fix: Vec2) {
        let innovation = [fix.x - self.state[0], fix.y - self.state[1]];
        self.last_innovation = (innovation[0].powi(2) + innovation[1].powi(2)).sqrt();

        // S = H P Hᵀ + R over the position block.
        let s = [
            [
                self.covariance[0][0] + self.config.r_gnss,
                self.covariance[0][1],
            ],
            [
                self.covariance[1][0],
                self.covariance[1][1] + self.config.r_gnss,
            ],
        ];
        let det = s[0][0] * s[1][1] - s[0][1] * s[1][0];
        if det.abs() < 1e-12 {
            return;
        }
        let s_inv = [
            [s[1][1] / det, -s[0][1] / det],
            [-s[1][0] / det, s[0][0] / det],
        ];

        if let Some(gate) = self.config.gnss_gate {
            let d2 = innovation[0] * (s_inv[0][0] * innovation[0] + s_inv[0][1] * innovation[1])
                + innovation[1] * (s_inv[1][0] * innovation[0] + s_inv[1][1] * innovation[1]);
            if d2 > gate {
                self.rejected_fixes += 1;
                return;
            }
        }

        // K = P Hᵀ S⁻¹ (4×2).
        let mut k = [[0.0; 2]; 4];
        for row in 0..4 {
            let p0 = self.covariance[row][0];
            let p1 = self.covariance[row][1];
            k[row][0] = p0 * s_inv[0][0] + p1 * s_inv[1][0];
            k[row][1] = p0 * s_inv[0][1] + p1 * s_inv[1][1];
        }
        for row in 0..4 {
            self.state[row] += k[row][0] * innovation[0] + k[row][1] * innovation[1];
        }
        self.state[2] = wrap_angle(self.state[2]);
        // P ← (I − K·H) P with H selecting rows 0..1.
        let p0: [f64; 4] = self.covariance[0];
        let p1: [f64; 4] = self.covariance[1];
        for row in 0..4 {
            for col in 0..4 {
                self.covariance[row][col] -= k[row][0] * p0[col] + k[row][1] * p1[col];
            }
        }
    }

    fn estimate(&self, frame: &SensorFrame) -> Estimate {
        Estimate {
            position: Vec2::new(self.state[0], self.state[1]),
            heading: self.state[2],
            speed: self.state[3].max(0.0),
            yaw_rate: frame.imu_yaw_rate,
        }
    }
}

fn scaled_identity(v: f64) -> Mat4 {
    let mut m = [[0.0; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = v;
    }
    m
}

fn mat_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for i in 0..4 {
        for k in 0..4 {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..4 {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

fn transpose(a: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = a[j][i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t: f64, gnss: Option<Vec2>, speed: f64, yaw: f64, compass: f64) -> SensorFrame {
        SensorFrame {
            time: t,
            gnss,
            wheel_speed: speed,
            imu_yaw_rate: yaw,
            imu_accel: 0.0,
            compass,
        }
    }

    #[test]
    fn first_fix_initialises() {
        let mut ekf = Ekf::new(EkfConfig::standard());
        assert!(!ekf.is_initialized());
        let e = ekf.update(&frame(0.0, Some(Vec2::new(3.0, 4.0)), 2.0, 0.0, 0.5), 0.01);
        assert!(ekf.is_initialized());
        assert_eq!(e.position, Vec2::new(3.0, 4.0));
        assert!((e.heading - 0.5).abs() < 1e-12);
        assert!((e.speed - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tracks_straight_motion_with_periodic_fixes() {
        let mut ekf = Ekf::new(EkfConfig::standard());
        ekf.update(&frame(0.0, Some(Vec2::ZERO), 10.0, 0.0, 0.0), 0.01);
        // 10 m/s east, GNSS every 10th cycle, exact measurements.
        for i in 1..=500 {
            let t = f64::from(i) * 0.01;
            let fix = (i % 10 == 0).then(|| Vec2::new(10.0 * t, 0.0));
            ekf.update(&frame(t, fix, 10.0, 0.0, 0.0), 0.01);
        }
        let e = ekf.update(&frame(5.01, None, 10.0, 0.0, 0.0), 0.01);
        assert!((e.position.x - 50.1).abs() < 0.3, "{:?}", e.position);
        assert!(e.position.y.abs() < 0.1);
        assert!(ekf.position_sigma() < 1.0, "filter should be confident");
    }

    #[test]
    fn covariance_shrinks_with_measurements() {
        let mut ekf = Ekf::new(EkfConfig::standard());
        ekf.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, 0.0), 0.01);
        let sigma_initial = ekf.position_sigma();
        for i in 1..=100 {
            ekf.update(
                &frame(f64::from(i) * 0.01, Some(Vec2::ZERO), 0.0, 0.0, 0.0),
                0.01,
            );
        }
        assert!(ekf.position_sigma() < sigma_initial);
        assert!(ekf.position_sigma() < 0.3);
    }

    #[test]
    fn innovation_reported_even_when_gated() {
        let mut ekf = Ekf::new(EkfConfig::gated());
        ekf.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, 0.0), 0.01);
        for i in 1..=20 {
            ekf.update(
                &frame(f64::from(i) * 0.01, Some(Vec2::ZERO), 0.0, 0.0, 0.0),
                0.01,
            );
        }
        let before = ekf.rejected_fixes();
        // A 12 m teleport: must be rejected, but the innovation recorded.
        ekf.update(&frame(0.3, Some(Vec2::new(12.0, 0.0)), 0.0, 0.0, 0.0), 0.01);
        assert_eq!(ekf.rejected_fixes(), before + 1);
        assert!((ekf.last_innovation() - 12.0).abs() < 0.5);
        // The state must NOT have followed the spoofed fix.
        let e = ekf.update(&frame(0.31, None, 0.0, 0.0, 0.0), 0.01);
        assert!(e.position.norm() < 0.5, "{:?}", e.position);
    }

    #[test]
    fn ungated_filter_follows_spoofed_fixes() {
        let mut ekf = Ekf::new(EkfConfig::standard());
        ekf.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, 0.0), 0.01);
        for i in 1..=50 {
            let fix = Vec2::new(12.0, 0.0); // persistent spoof
            ekf.update(&frame(f64::from(i) * 0.1, Some(fix), 0.0, 0.0, 0.0), 0.01);
        }
        let e = ekf.update(&frame(5.1, None, 0.0, 0.0, 0.0), 0.01);
        assert!((e.position.x - 12.0).abs() < 1.0, "{:?}", e.position);
    }

    #[test]
    fn heading_update_wraps_correctly() {
        use std::f64::consts::PI;
        let mut ekf = Ekf::new(EkfConfig::standard());
        ekf.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, PI - 0.05), 0.01);
        // Compass readings on the other side of the seam must pull the
        // heading the short way round.
        for i in 1..=200 {
            ekf.update(
                &frame(f64::from(i) * 0.01, None, 0.0, 0.0, -PI + 0.05),
                0.01,
            );
        }
        let e = ekf.update(&frame(2.01, None, 0.0, 0.0, -PI + 0.05), 0.01);
        assert!(
            (e.heading.abs() - PI).abs() < 0.12,
            "heading {} should sit near ±π",
            e.heading
        );
    }

    #[test]
    fn speed_never_reported_negative() {
        let mut ekf = Ekf::new(EkfConfig::standard());
        ekf.update(&frame(0.0, Some(Vec2::ZERO), 0.0, 0.0, 0.0), 0.01);
        let e = ekf.update(&frame(0.01, None, 0.0, 0.0, 0.0), 0.01);
        assert!(e.speed >= 0.0);
    }

    #[test]
    fn covariance_stays_symmetric_positive() {
        let mut ekf = Ekf::new(EkfConfig::standard());
        ekf.update(&frame(0.0, Some(Vec2::ZERO), 5.0, 0.1, 0.0), 0.01);
        for i in 1..=1000 {
            let t = f64::from(i) * 0.01;
            let fix = (i % 10 == 0).then(|| Vec2::new(5.0 * t, 0.0));
            ekf.update(&frame(t, fix, 5.0, 0.1, 0.1 * t % 1.0), 0.01);
        }
        for i in 0..4 {
            assert!(ekf.covariance[i][i] > 0.0, "P[{i}][{i}] not positive");
            for j in 0..4 {
                let asym = (ekf.covariance[i][j] - ekf.covariance[j][i]).abs();
                assert!(asym < 1e-6, "P asymmetric at [{i}][{j}]: {asym}");
            }
        }
    }
}
