//! Geometric pure-pursuit lateral controller.
//!
//! Chases a lookahead point on the path at distance `L_d = clamp(k·v, min,
//! max)` ahead of the vehicle's projection; the steering command is the
//! bicycle-geometry arc through that point:
//! `δ = atan(2·L·sin(α) / L_d)` where `α` is the bearing of the lookahead
//! point in the vehicle frame.

use serde::{Deserialize, Serialize};

use adassure_sim::geometry::wrap_angle;
use adassure_sim::track::Track;

use crate::{Estimate, LateralController};

/// Pure-pursuit tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PurePursuitConfig {
    /// Wheelbase of the controlled vehicle (m).
    pub wheelbase: f64,
    /// Lookahead gain: seconds of travel converted to metres of lookahead.
    pub lookahead_gain: f64,
    /// Minimum lookahead distance (m).
    pub min_lookahead: f64,
    /// Maximum lookahead distance (m).
    pub max_lookahead: f64,
}

impl PurePursuitConfig {
    /// Defaults matched to [`adassure_sim::vehicle::VehicleParams::passenger_car`].
    pub fn standard() -> Self {
        PurePursuitConfig {
            wheelbase: 2.7,
            lookahead_gain: 0.9,
            min_lookahead: 4.0,
            max_lookahead: 18.0,
        }
    }
}

impl Default for PurePursuitConfig {
    fn default() -> Self {
        PurePursuitConfig::standard()
    }
}

/// The pure-pursuit controller.
#[derive(Debug, Clone)]
pub struct PurePursuit {
    config: PurePursuitConfig,
}

impl PurePursuit {
    /// Creates a controller.
    pub fn new(config: PurePursuitConfig) -> Self {
        PurePursuit { config }
    }

    /// Current lookahead distance for a given speed (m).
    pub fn lookahead(&self, speed: f64) -> f64 {
        (self.config.lookahead_gain * speed)
            .clamp(self.config.min_lookahead, self.config.max_lookahead)
    }
}

impl Default for PurePursuit {
    fn default() -> Self {
        PurePursuit::new(PurePursuitConfig::standard())
    }
}

impl LateralController for PurePursuit {
    fn steer(&mut self, est: &Estimate, track: &Track, _dt: f64) -> f64 {
        let lookahead = self.lookahead(est.speed);
        let proj = track.project(est.position);
        let target = track.point_at(proj.station + lookahead);
        let to_target = target - est.position;
        let alpha = wrap_angle(to_target.angle() - est.heading);
        let ld = to_target.norm().max(1e-3);
        (2.0 * self.config.wheelbase * alpha.sin() / ld).atan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_sim::geometry::Vec2;

    fn straight() -> Track {
        Track::line([0.0, 0.0], [200.0, 0.0], 1.0).unwrap()
    }

    fn estimate(x: f64, y: f64, heading: f64, speed: f64) -> Estimate {
        Estimate {
            position: Vec2::new(x, y),
            heading,
            speed,
            yaw_rate: 0.0,
        }
    }

    #[test]
    fn on_path_aligned_steers_straight() {
        let mut pp = PurePursuit::default();
        let steer = pp.steer(&estimate(10.0, 0.0, 0.0, 8.0), &straight(), 0.01);
        assert!(steer.abs() < 1e-6, "{steer}");
    }

    #[test]
    fn offset_left_steers_right() {
        let mut pp = PurePursuit::default();
        let steer = pp.steer(&estimate(10.0, 2.0, 0.0, 8.0), &straight(), 0.01);
        assert!(steer < -0.01, "left of path must steer right, got {steer}");
    }

    #[test]
    fn offset_right_steers_left() {
        let mut pp = PurePursuit::default();
        let steer = pp.steer(&estimate(10.0, -2.0, 0.0, 8.0), &straight(), 0.01);
        assert!(steer > 0.01, "right of path must steer left, got {steer}");
    }

    #[test]
    fn lookahead_clamps() {
        let pp = PurePursuit::default();
        assert_eq!(pp.lookahead(0.0), 4.0);
        assert_eq!(pp.lookahead(100.0), 18.0);
        assert!((pp.lookahead(10.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn heading_error_alone_produces_correction() {
        let mut pp = PurePursuit::default();
        // On the path but pointing 30° left: must steer right.
        let steer = pp.steer(&estimate(10.0, 0.0, 0.5, 8.0), &straight(), 0.01);
        assert!(steer < -0.05, "{steer}");
    }

    #[test]
    fn follows_circle_with_near_constant_steer() {
        let track = Track::circle([0.0, 0.0], 20.0, 1.0).unwrap();
        let mut pp = PurePursuit::default();
        // Place the vehicle on the circle, tangent heading.
        let p = track.point_at(0.0);
        let h = track.heading_at(0.0);
        let steer = pp.steer(&estimate(p.x, p.y, h, 6.0), &track, 0.01);
        // Expected kinematic steer for r=20, L=2.7 ≈ atan(L/r) ≈ 0.134.
        assert!(steer > 0.05 && steer < 0.25, "{steer}");
    }
}
