//! Campaign-execution engine for the ADAssure experiment harnesses.
//!
//! Every table and figure of the evaluation is a sweep over the same four
//! axes — scenario × controller × attack × seed — followed by aggregation
//! and formatting. This crate owns the sweep so the harness binaries are
//! thin declarative definitions:
//!
//! - [`grid`] declares the sweep as a [`Grid`](grid::Grid) and enumerates it
//!   into indexed [`RunSpec`](grid::RunSpec) cells;
//! - [`runtime`] owns the shared worker pool ([`runtime::Runtime`]) used by
//!   campaigns *and* the fleet monitor server; [`par`] is its campaign-facing
//!   surface, executing cells with results keyed by cell index so output is
//!   bit-identical to a serial run regardless of thread count
//!   (`ADASSURE_THREADS` overrides the worker count, parsed once per
//!   process);
//! - [`campaign`] is the single entry point wiring a cell through
//!   `adassure_scenarios::run` and the checker into a record;
//! - [`record`] holds the structured per-run and per-campaign result types
//!   serialized to `results/*.json` alongside the text tables;
//! - [`agg`] has the aggregation helpers (detection rate, mean ± std,
//!   percentiles, top-k diagnosis accuracy) shared by all harnesses.
//!
//! # Example
//!
//! ```
//! use adassure_exp::grid::{AttackSet, Grid};
//! use adassure_exp::campaign::Campaign;
//! use adassure_control::ControllerKind;
//! use adassure_scenarios::ScenarioKind;
//!
//! let grid = Grid::new()
//!     .scenarios([ScenarioKind::Straight])
//!     .controllers([ControllerKind::PurePursuit])
//!     .attacks(AttackSet::None)
//!     .include_clean(true)
//!     .seeds([1]);
//! let report = Campaign::new("doc_example", grid).run().unwrap();
//! assert_eq!(report.runs.len(), 1);
//! assert!(!report.runs[0].detected, "clean run should raise no alarm");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agg;
pub mod campaign;
pub mod check;
pub mod grid;
pub mod par;
pub mod record;
pub mod rerun;
pub mod runtime;

pub use campaign::Campaign;
pub use check::{check_columnar_traces, check_traces, check_traces_scalar};
pub use grid::{AttackSet, Grid, RunSpec};
pub use record::{CampaignReport, GroupSummary, RunRecord};
pub use runtime::Runtime;
