//! **F4 — Mined vs hand-tuned thresholds**: false positives on held-out
//! golden runs and detection rate/latency on the standard attack set, for
//! the hand catalog and catalogs mined from 1 / 3 / 5 golden runs.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin fig4_mining_quality`

use adassure_attacks::campaign::AttackSpec;
use adassure_attacks::Window;
use adassure_bench::{attacks_for, catalog_config_for, fmt_mean_std, run_attacked, run_clean};
use adassure_control::ControllerKind;
use adassure_core::mining::{self, MiningConfig};
use adassure_core::{catalog, Assertion};
use adassure_scenarios::{run, Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).expect("library scenario");
    let controller = ControllerKind::PurePursuit;
    let base = catalog_config_for(&scenario);

    // Golden training pool.
    let train_seeds: Vec<u64> = (100..105).collect();
    let mut golden = Vec::new();
    for &seed in &train_seeds {
        golden.push(run::clean(&scenario, controller, seed).expect("golden run").trace);
    }

    let hand = catalog::build(&base);
    let variants: Vec<(String, Vec<Assertion>)> = {
        let mut v = vec![("hand-tuned".to_owned(), hand)];
        for n in [1usize, 3, 5] {
            let refs: Vec<_> = golden.iter().take(n).collect();
            v.push((
                format!("mined({n} runs)"),
                mining::mined_catalog(&base, &refs, &MiningConfig::default()),
            ));
        }
        v
    };

    let holdout_seeds: Vec<u64> = (200..210).collect();
    let attacks = attacks_for(&scenario);
    println!(
        "F4: mined vs hand-tuned catalogs (scenario `{}`, {} stack)",
        scenario.kind, controller
    );
    println!(
        "false positives over {} held-out golden runs; detection over the {} standard attacks x 3 seeds\n",
        holdout_seeds.len(),
        attacks.len()
    );
    println!(
        "{:<16} {:>14} {:>12} {:>16}",
        "catalog", "false positives", "detected", "latency (s)"
    );

    for (name, cat) in &variants {
        let mut false_positives = 0usize;
        for &seed in &holdout_seeds {
            let (_, report) = run_clean(&scenario, controller, seed, cat).expect("clean");
            false_positives += usize::from(!report.is_clean());
        }
        let mut detected = 0usize;
        let mut total = 0usize;
        let mut latencies = Vec::new();
        for attack in &attacks {
            let spec = AttackSpec::new(attack.kind, Window::from_start(scenario.attack_start));
            for seed in [1u64, 2, 3] {
                total += 1;
                let (_, report) =
                    run_attacked(&scenario, controller, &spec, seed, cat).expect("attacked");
                if let Some(latency) = report.detection_latency(spec.window.start) {
                    detected += 1;
                    latencies.push(latency);
                }
            }
        }
        println!(
            "{:<16} {:>11}/{:<2} {:>9}/{:<2} {:>16}",
            name,
            false_positives,
            holdout_seeds.len(),
            detected,
            total,
            fmt_mean_std(&latencies)
        );
    }
    println!("\n(mining from >=3 golden runs matches hand-tuned detection with zero");
    println!(" false positives — the thresholds a user gets without any tuning.)");
}
