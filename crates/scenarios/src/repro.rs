//! Self-contained violation repros: everything needed to re-execute one
//! failing run from a file.
//!
//! A [`ReproCase`] pins the scenario, the full stack configuration, the
//! seed and the attack timeline of a violating run, together with the
//! assertion the run is expected to fire. The minimizer in
//! `adassure-debug` emits these after shrinking a violating timeline; the
//! campaign engine re-runs them through `adassure_exp::rerun::run_repro`.
//!
//! The file format is plain JSON so repros can be attached to bug reports
//! and diffed by eye.

use std::fmt;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use adassure_attacks::AttackTimeline;
use adassure_control::pipeline::AdStack;
use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_sim::engine::SimOutput;
use adassure_sim::SimError;

use crate::{run, Scenario, ScenarioKind};

/// What a repro is expected to reproduce when re-executed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproExpectation {
    /// The assertion id that must fire (e.g. `"A7"`).
    pub assertion: String,
    /// The monitor cycle the first violation of that assertion was
    /// detected at in the emitting run (0-based).
    pub cycle: u64,
}

/// A self-contained, re-executable violating run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproCase {
    /// Human-readable provenance (which run this was minimized from).
    pub description: String,
    /// The scenario to drive.
    pub scenario: ScenarioKind,
    /// The lateral controller under test.
    pub controller: ControllerKind,
    /// The state estimator under test.
    pub estimator: EstimatorKind,
    /// The simulation seed.
    pub seed: u64,
    /// The (minimized) attack timeline to inject.
    pub timeline: AttackTimeline,
    /// The violation this case reproduces.
    pub expect: ReproExpectation,
}

/// Failure loading or storing a [`ReproCase`] file.
#[derive(Debug)]
pub enum ReproError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file exists but is not a valid repro case.
    Parse(String),
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::Io(err) => write!(f, "repro file I/O: {err}"),
            ReproError::Parse(message) => write!(f, "repro file parse: {message}"),
        }
    }
}

impl std::error::Error for ReproError {}

impl From<io::Error> for ReproError {
    fn from(err: io::Error) -> Self {
        ReproError::Io(err)
    }
}

impl ReproCase {
    /// Re-executes the case's run — same scenario, stack, seed and
    /// timeline as the emitting run, bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`SimError`]).
    pub fn execute(&self) -> Result<SimOutput, SimError> {
        let scenario = Scenario::of_kind(self.scenario)?;
        let config = run::stack_config(&scenario, self.controller).with_estimator(self.estimator);
        let mut stack = AdStack::new(config, scenario.track.clone());
        let engine = run::engine_for(&scenario, self.seed);
        if self.timeline.is_empty() {
            engine.run(&mut stack)
        } else {
            let mut injector = self.timeline.injector(self.seed);
            engine.run_with_tap(&mut stack, &mut injector)
        }
    }

    /// Serializes the case as pretty-printed JSON (trailing newline
    /// included).
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("repro cases serialize");
        text.push('\n');
        text
    }

    /// Parses a case from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::Parse`] when the text is not a repro case.
    pub fn from_json(text: &str) -> Result<Self, ReproError> {
        serde_json::from_str(text).map_err(|e| ReproError::Parse(e.to_string()))
    }

    /// Writes the case to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), ReproError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads a case from a JSON file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ReproError::Io`] when the file cannot be read and
    /// [`ReproError::Parse`] when its contents are not a repro case.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ReproError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_attacks::{campaign::AttackSpec, AttackKind, Window};
    use adassure_sim::geometry::Vec2;

    fn case() -> ReproCase {
        ReproCase {
            description: "unit".into(),
            scenario: ScenarioKind::Straight,
            controller: ControllerKind::PurePursuit,
            estimator: EstimatorKind::Complementary,
            seed: 1,
            timeline: AttackTimeline::single(AttackSpec::new(
                AttackKind::GnssBias {
                    offset: Vec2::new(6.0, 0.0),
                },
                Window::from_start(8.0),
            )),
            expect: ReproExpectation {
                assertion: "A7".into(),
                cycle: 850,
            },
        }
    }

    #[test]
    fn json_round_trips() {
        let c = case();
        let back = ReproCase::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn garbage_is_a_parse_error() {
        assert!(matches!(
            ReproCase::from_json("{\"not\": \"a repro\"}"),
            Err(ReproError::Parse(_))
        ));
    }

    #[test]
    fn execute_matches_direct_run() {
        let c = case();
        let via_case = c.execute().unwrap();
        let scenario = Scenario::of_kind(c.scenario).unwrap();
        let mut stack = AdStack::new(
            run::stack_config(&scenario, c.controller).with_estimator(c.estimator),
            scenario.track.clone(),
        );
        let mut injector = c.timeline.entries[0].injector(c.seed);
        let direct = run::engine_for(&scenario, c.seed)
            .run_with_tap(&mut stack, &mut injector)
            .unwrap();
        assert_eq!(via_case.trace, direct.trace);
    }
}
