//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the handful of `rand` APIs it uses are reimplemented here:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with `gen`, and
//! [`rngs::SmallRng`] (xoshiro256++, seeded via SplitMix64 like upstream's
//! `seed_from_u64`). Streams are deterministic per seed but are **not**
//! bit-compatible with the real `rand` crate; every consumer in this
//! workspace only relies on self-consistency.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a fixed-width seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and constructs the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from the "standard" distribution of an RNG: uniform over
/// the full integer range, uniform in `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// Returns the raw xoshiro256++ state words.
        ///
        /// Together with [`SmallRng::from_state`] this lets deterministic
        /// replay tooling checkpoint a generator mid-stream and resume it
        /// bit-identically.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from raw state words previously
        /// obtained via [`SmallRng::state`].
        ///
        /// An all-zero state (a fixed point of xoshiro) is nudged to the
        /// same non-zero state `from_seed` would produce, so a restored
        /// generator is never degenerate.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return SmallRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..16).map(|_| rng.gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
