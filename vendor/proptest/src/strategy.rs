//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus `Sized`-gated combinators, so
/// `dyn Strategy<Value = T>` works for boxing.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds recursive values: `self` generates leaves and `recurse` wraps
    /// an inner strategy into one more level, up to `depth` levels.
    ///
    /// The `desired_size` / `expected_branch_size` tuning knobs of the real
    /// proptest API are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Chooses uniformly among several strategies (built by [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.index(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Half-open numeric ranges are strategies, like in real proptest.
impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        })*
    };
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// String literals act as generation patterns (character classes with
/// repetition), e.g. `"[a-z][a-z0-9_]{0,8}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })*
    };
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let f = (2.0f64..3.5).generate(&mut rng);
            assert!((2.0..3.5).contains(&f));
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::deterministic("combos");
        let strat = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::deterministic("trees");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never produced an inner node");
    }
}
