//! Root-cause diagnosis from assertion-violation patterns.
//!
//! The debugging payoff of ADAssure: instead of handing the engineer a bare
//! list of fired assertions, the violation *pattern* is matched against a
//! cause–effect matrix. Each assertion contributes evidence weight to the
//! causes that can make it fire; causes whose *signature* assertions stayed
//! silent are discounted (absence of evidence is evidence here, because the
//! cross-consistency checks are specifically sensitive to their channel).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::assertion::AssertionId;
use crate::report::CheckReport;

/// A candidate root cause of anomalous control behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CauseTag {
    /// The GNSS channel is compromised (spoofing, jamming, dropout, delay).
    GnssChannel,
    /// The wheel-odometry channel is compromised.
    WheelSpeedChannel,
    /// The IMU yaw-rate channel is compromised.
    ImuYawChannel,
    /// The compass/heading channel is compromised.
    CompassChannel,
    /// The control algorithms themselves misbehave (tuning, bug, saturation).
    ControlLoop,
}

impl CauseTag {
    /// All candidate causes, in a stable order.
    pub const ALL: [CauseTag; 5] = [
        CauseTag::GnssChannel,
        CauseTag::WheelSpeedChannel,
        CauseTag::ImuYawChannel,
        CauseTag::CompassChannel,
        CauseTag::ControlLoop,
    ];

    /// Short lowercase name (stable; used in reports).
    pub fn name(self) -> &'static str {
        match self {
            CauseTag::GnssChannel => "gnss",
            CauseTag::WheelSpeedChannel => "wheel_speed",
            CauseTag::ImuYawChannel => "imu_yaw",
            CauseTag::CompassChannel => "compass",
            CauseTag::ControlLoop => "control_loop",
        }
    }
}

impl std::fmt::Display for CauseTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A ranked candidate cause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CauseScore {
    /// The candidate cause.
    pub cause: CauseTag,
    /// Normalised evidence score in `[0, 1]`; all scores sum to 1 when any
    /// evidence exists.
    pub score: f64,
}

/// A diagnosis: candidate causes ranked by evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Candidates in descending score order (ties broken by
    /// [`CauseTag::ALL`] order). Empty when no assertion fired.
    pub ranking: Vec<CauseScore>,
}

impl Diagnosis {
    /// The top-ranked cause, if any evidence exists.
    pub fn top(&self) -> Option<CauseTag> {
        self.ranking.first().map(|c| c.cause)
    }

    /// Whether `cause` appears within the first `n` ranked candidates.
    pub fn contains_in_top(&self, cause: CauseTag, n: usize) -> bool {
        self.ranking.iter().take(n).any(|c| c.cause == cause)
    }
}

/// Per-assertion evidence weights: which causes can make this assertion
/// fire, and how specifically.
fn evidence(assertion: &str) -> &'static [(CauseTag, f64)] {
    use CauseTag::*;
    match assertion {
        "A1" => &[
            (GnssChannel, 0.30),
            (CompassChannel, 0.25),
            (ControlLoop, 0.20),
            (WheelSpeedChannel, 0.15),
            (ImuYawChannel, 0.10),
        ],
        "A2" => &[
            (CompassChannel, 0.45),
            (GnssChannel, 0.20),
            (ControlLoop, 0.20),
            (ImuYawChannel, 0.15),
        ],
        "A3" => &[
            (WheelSpeedChannel, 0.45),
            (ControlLoop, 0.30),
            (GnssChannel, 0.15),
            (ImuYawChannel, 0.10),
        ],
        "A4" => &[(ControlLoop, 0.80), (GnssChannel, 0.20)],
        "A5" => &[
            (GnssChannel, 0.45),
            (ControlLoop, 0.35),
            (CompassChannel, 0.20),
        ],
        "A6" => &[(GnssChannel, 0.50), (WheelSpeedChannel, 0.50)],
        "A7" => &[(GnssChannel, 1.00)],
        "A8" => &[(ImuYawChannel, 0.70), (WheelSpeedChannel, 0.30)],
        // Progress regression is the GNSS stream fighting dead reckoning;
        // either side of that fight can be the liar.
        "A9" => &[
            (GnssChannel, 0.60),
            (WheelSpeedChannel, 0.25),
            (ControlLoop, 0.15),
        ],
        "A10" => &[
            (ImuYawChannel, 0.40),
            (ControlLoop, 0.30),
            (WheelSpeedChannel, 0.30),
        ],
        // Innovation is GNSS disagreeing with dead reckoning; dead
        // reckoning is fed by wheel speed, IMU and compass, so all four are
        // suspects (GNSS first — it is the usual liar).
        "A11" => &[
            (GnssChannel, 0.45),
            (WheelSpeedChannel, 0.25),
            (ImuYawChannel, 0.15),
            (CompassChannel, 0.15),
        ],
        "A12" => &[
            (ControlLoop, 0.50),
            (WheelSpeedChannel, 0.30),
            (GnssChannel, 0.20),
        ],
        "A13" => &[(GnssChannel, 1.00)],
        "A14" => &[(CompassChannel, 0.70), (ImuYawChannel, 0.30)],
        "A15" => &[(WheelSpeedChannel, 0.80), (ImuYawChannel, 0.20)],
        "A16" => &[(WheelSpeedChannel, 0.90), (ControlLoop, 0.10)],
        _ => &[],
    }
}

/// GNSS attacks essentially always trip one of these channel-specific
/// checks; their collective silence discounts the GNSS hypothesis.
const GNSS_SIGNATURE: [&str; 4] = ["A7", "A11", "A13", "A9"];
/// Wheel-channel signature checks.
const WHEEL_SIGNATURE: [&str; 4] = ["A6", "A3", "A15", "A16"];
/// IMU signature check.
const IMU_SIGNATURE: [&str; 1] = ["A8"];
/// Compass signature check.
const COMPASS_SIGNATURE: [&str; 1] = ["A14"];

/// Diagnoses from the set of violated assertion ids, considering every
/// cause in [`CauseTag::ALL`].
pub fn diagnose_ids(violated: &BTreeSet<AssertionId>) -> Diagnosis {
    diagnose_ids_with_candidates(violated, &CauseTag::ALL)
}

/// Diagnoses from the set of violated assertion ids against a restricted
/// candidate hypothesis space (ablations and targeted triage narrow the
/// cause set). Evidence weight pointing at a cause outside `candidates`
/// is discarded — the remaining weights are renormalised over the
/// candidates, and the ranking never contains a non-candidate cause.
pub fn diagnose_ids_with_candidates(
    violated: &BTreeSet<AssertionId>,
    candidates: &[CauseTag],
) -> Diagnosis {
    let mut scores: Vec<(CauseTag, f64)> = candidates.iter().map(|&c| (c, 0.0)).collect();
    for id in violated {
        for &(cause, w) in evidence(id.as_str()) {
            // Evidence for a cause outside the candidate set has no slot to
            // land in; skip it. (This used to be an
            // `.expect("all causes present")`, which panicked on the first
            // evidence row mentioning a non-candidate cause.)
            if let Some(slot) = scores.iter_mut().find(|(c, _)| *c == cause) {
                slot.1 += w;
            }
        }
    }

    let fired = |sig: &[&str]| sig.iter().any(|s| violated.contains(*s));
    let discount = |scores: &mut Vec<(CauseTag, f64)>, cause: CauseTag, factor: f64| {
        if let Some(slot) = scores.iter_mut().find(|(c, _)| *c == cause) {
            slot.1 *= factor;
        }
    };
    if !fired(&GNSS_SIGNATURE) {
        discount(&mut scores, CauseTag::GnssChannel, 0.25);
    }
    if !fired(&WHEEL_SIGNATURE) {
        discount(&mut scores, CauseTag::WheelSpeedChannel, 0.5);
    }
    if !fired(&IMU_SIGNATURE) {
        discount(&mut scores, CauseTag::ImuYawChannel, 0.5);
    }
    if !fired(&COMPASS_SIGNATURE) {
        discount(&mut scores, CauseTag::CompassChannel, 0.6);
    }

    let total: f64 = scores.iter().map(|(_, s)| s).sum();
    if total <= 0.0 {
        return Diagnosis { ranking: vec![] };
    }
    let mut ranking: Vec<CauseScore> = scores
        .into_iter()
        .filter(|(_, s)| *s > 0.0)
        .map(|(cause, score)| CauseScore {
            cause,
            score: score / total,
        })
        .collect();
    ranking.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.cause.cmp(&b.cause)));
    Diagnosis { ranking }
}

/// Diagnoses from a check report.
///
/// # Example
///
/// ```
/// use adassure_core::diagnosis::{diagnose, CauseTag};
/// use adassure_core::CheckReport;
///
/// let clean = CheckReport::new(vec![], 10.0, 14);
/// assert_eq!(diagnose(&clean).top(), None);
/// ```
pub fn diagnose(report: &CheckReport) -> Diagnosis {
    diagnose_ids(&report.violated_ids())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(list: &[&str]) -> BTreeSet<AssertionId> {
        list.iter().map(|s| AssertionId::new(*s)).collect()
    }

    #[test]
    fn gnss_signature_ranks_gnss_first() {
        let d = diagnose_ids(&ids(&["A7", "A11"]));
        assert_eq!(d.top(), Some(CauseTag::GnssChannel));
        assert!(d.ranking[0].score > 0.6);
    }

    #[test]
    fn wheel_attack_without_gnss_signature_ranks_wheel_first() {
        // A6 alone is ambiguous Gnss/Wheel evidence, but with no
        // GNSS-signature assertion fired, the GNSS hypothesis is discounted.
        let d = diagnose_ids(&ids(&["A6"]));
        assert_eq!(d.top(), Some(CauseTag::WheelSpeedChannel));
    }

    #[test]
    fn imu_attack_signature() {
        let d = diagnose_ids(&ids(&["A8"]));
        assert_eq!(d.top(), Some(CauseTag::ImuYawChannel));
    }

    #[test]
    fn compass_attack_signature() {
        let d = diagnose_ids(&ids(&["A14", "A2"]));
        assert_eq!(d.top(), Some(CauseTag::CompassChannel));
    }

    #[test]
    fn behavioural_only_points_at_control_loop_or_spreads() {
        let d = diagnose_ids(&ids(&["A4"]));
        assert_eq!(d.top(), Some(CauseTag::ControlLoop));
    }

    #[test]
    fn empty_set_gives_empty_diagnosis() {
        let d = diagnose_ids(&BTreeSet::new());
        assert!(d.ranking.is_empty());
        assert_eq!(d.top(), None);
        assert!(!d.contains_in_top(CauseTag::GnssChannel, 5));
    }

    #[test]
    fn scores_are_normalised() {
        let d = diagnose_ids(&ids(&["A6", "A7", "A11", "A13"]));
        let total: f64 = d.ranking.iter().map(|c| c.score).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Descending order.
        for pair in d.ranking.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn contains_in_top_respects_n() {
        let d = diagnose_ids(&ids(&["A6"]));
        assert!(d.contains_in_top(CauseTag::WheelSpeedChannel, 1));
        assert!(d.contains_in_top(CauseTag::GnssChannel, 2));
        assert!(!d.contains_in_top(CauseTag::CompassChannel, 1));
    }

    #[test]
    fn unknown_assertion_ids_contribute_nothing() {
        let d = diagnose_ids(&ids(&["Z9"]));
        assert!(d.ranking.is_empty());
    }

    #[test]
    fn restricted_candidates_skip_foreign_evidence() {
        // Regression: A1's evidence row spreads weight over all five
        // causes, so with a single-candidate hypothesis space the old
        // accumulation hit `.expect("all causes present")` and panicked on
        // the first foreign cause. Foreign weight must be skipped and the
        // remainder renormalised over the candidates.
        let d = diagnose_ids_with_candidates(&ids(&["A1"]), &[CauseTag::GnssChannel]);
        assert_eq!(d.ranking.len(), 1);
        assert_eq!(d.top(), Some(CauseTag::GnssChannel));
        assert!((d.ranking[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn restricted_candidates_never_rank_foreign_causes() {
        let d = diagnose_ids_with_candidates(
            &ids(&["A6", "A7", "A11"]),
            &[CauseTag::WheelSpeedChannel, CauseTag::ControlLoop],
        );
        assert!(d
            .ranking
            .iter()
            .all(|c| matches!(c.cause, CauseTag::WheelSpeedChannel | CauseTag::ControlLoop)));
        assert_eq!(d.top(), Some(CauseTag::WheelSpeedChannel));
    }

    #[test]
    fn empty_candidate_set_gives_empty_diagnosis() {
        let d = diagnose_ids_with_candidates(&ids(&["A7"]), &[]);
        assert!(d.ranking.is_empty());
    }

    #[test]
    fn full_candidate_set_matches_diagnose_ids() {
        let violated = ids(&["A6", "A7", "A11", "A13"]);
        assert_eq!(
            diagnose_ids_with_candidates(&violated, &CauseTag::ALL),
            diagnose_ids(&violated)
        );
    }
}
