//! **F5 — Guardian mitigation (extension)**: worst-case *true* cross-track
//! error of attacked runs with the plain stack vs the same stack wrapped in
//! the runtime [`adassure::guardian::Guardian`] (safe-stop on critical
//! violations).
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin fig5_guardian`

use adassure::guardian::{GuardState, Guardian, GuardianConfig};
use adassure_attacks::campaign::AttackSpec;
use adassure_attacks::Window;
use adassure_bench::{attacks_for, catalog_config_for, fmt_mean_std};
use adassure_control::pipeline::AdStack;
use adassure_control::ControllerKind;
use adassure_core::catalog;
use adassure_scenarios::{run, Scenario, ScenarioKind};
use adassure_trace::well_known as sig;

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).expect("library scenario");
    let controller = ControllerKind::PurePursuit;
    let seeds = [1u64, 2, 3];
    let cat = catalog::build(&catalog_config_for(&scenario));

    println!(
        "F5: guardian mitigation (scenario `{}`, {} stack, seeds {seeds:?})",
        scenario.kind, controller
    );
    println!("cells: worst |true cross-track error| after attack onset, mean±std (m)\n");
    println!(
        "{:<20} {:>16} {:>16} {:>14}",
        "attack", "plain stack", "guarded stack", "stop engaged"
    );

    for attack in attacks_for(&scenario) {
        let spec = AttackSpec::new(attack.kind, Window::from_start(scenario.attack_start));
        let mut plain = Vec::new();
        let mut guarded = Vec::new();
        let mut engage_delays = Vec::new();
        for &seed in &seeds {
            // Plain stack.
            let mut injector = spec.injector(seed);
            let out = run::with_tap(&scenario, controller, seed, &mut injector).expect("run");
            plain.push(worst_xtrack_after(&out.trace, spec.window.start));

            // Guarded stack.
            let stack = AdStack::new(
                run::stack_config(&scenario, controller),
                scenario.track.clone(),
            );
            let mut guardian = Guardian::new(stack, cat.iter().cloned(), GuardianConfig::default());
            let mut injector = spec.injector(seed);
            let out = run::engine_for(&scenario, seed)
                .run_with_tap(&mut guardian, &mut injector)
                .expect("guarded run");
            guarded.push(worst_xtrack_after(&out.trace, spec.window.start));
            if let GuardState::SafeStop { since, .. } = guardian.state() {
                engage_delays.push(since - spec.window.start);
            }
        }
        println!(
            "{:<20} {:>16} {:>16} {:>14}",
            spec.name(),
            fmt_mean_std(&plain),
            fmt_mean_std(&guarded),
            if engage_delays.is_empty() {
                format!("0/{}", seeds.len())
            } else {
                format!("{}/{} @{}s", engage_delays.len(), seeds.len(), fmt_mean_std(&engage_delays))
            }
        );
    }
    println!("\n(safe-stopping on the first critical violation bounds the physical");
    println!(" damage of every fast-detected attack; the stealthy drift class keeps");
    println!(" leaking error in proportion to its detection latency.)");
}

fn worst_xtrack_after(trace: &adassure_trace::Trace, t0: f64) -> f64 {
    trace
        .series_by_name(sig::TRUE_XTRACK_ERR)
        .map(|s| {
            s.samples()
                .iter()
                .filter(|x| x.time >= t0)
                .map(|x| x.value.abs())
                .fold(0.0f64, f64::max)
        })
        .unwrap_or(0.0)
}
