//! The wire path's central guarantee, pinned: checking driven through the
//! binary ingest protocol — TCP or Unix-domain, windowed producers,
//! saturation rewinds and all — produces **bit-identical** per-stream
//! reports and merged metrics JSON to direct in-process [`Fleet`]
//! submission of the same batches.

use std::sync::{Arc, Mutex};

use adassure_core::{Assertion, Condition, Severity, SignalExpr};
use adassure_exp::Runtime;
use adassure_fleet::{
    Fleet, FleetConfig, IngestConfig, IngestListener, IngestServer, ProducerConfig, SampleBatch,
    StreamId, SubmitError,
};

fn catalog() -> Vec<Assertion> {
    vec![
        Assertion::new(
            "W1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack").abs(),
                limit: 1.0,
            },
        ),
        Assertion::new(
            "W2",
            "speed stays non-negative",
            Severity::Warning,
            Condition::AtLeast {
                expr: SignalExpr::signal("speed"),
                limit: 0.0,
            },
        ),
        Assertion::new(
            "W3",
            "gnss fix is fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.3,
            },
        ),
    ]
}

/// One cycle of one stream: a timestamp and its channel samples.
struct Cycle {
    t: f64,
    samples: Vec<(&'static str, f64)>,
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn uniform(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }
}

/// Deterministic synthetic telemetry: excursions, NaN poisoning, lossy
/// gnss — every verdict and health state in the catalog fires somewhere.
fn stream_cycles(seed: u64, cycles: usize) -> Vec<Cycle> {
    let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
    let mut out = Vec::with_capacity(cycles);
    for k in 0..cycles {
        let t = 0.05 * (k + 1) as f64;
        let mut samples = Vec::new();
        let roll = rng.uniform();
        let xtrack = if roll < 0.15 {
            1.0 + 3.0 * rng.uniform()
        } else if roll < 0.2 {
            f64::NAN
        } else {
            rng.uniform() * 0.8
        };
        samples.push(("xtrack", xtrack));
        if rng.uniform() > 0.1 {
            let speed = if rng.uniform() < 0.1 {
                -rng.uniform()
            } else {
                5.0 + rng.uniform()
            };
            samples.push(("speed", speed));
        }
        if rng.uniform() > 0.3 {
            samples.push(("gnss_x", rng.uniform() * 100.0));
        }
        out.push(Cycle { t, samples });
    }
    out
}

const STREAMS: usize = 16;

fn corpus() -> Vec<Vec<Cycle>> {
    (0..STREAMS)
        .map(|i| stream_cycles(i as u64, 50 + (i % 5) * 10))
        .collect()
}

/// Cuts stream `index`'s cycles into batches of 1..=4 cycles, seeded by
/// the stream index — both legs cut identically.
fn cut_batches(id: StreamId, index: usize, cycles: &[Cycle]) -> Vec<SampleBatch> {
    let mut cuts = Lcg(4242 + index as u64);
    let mut out = Vec::new();
    let mut batch = SampleBatch::new(id);
    let mut left = 1 + (cuts.next() % 4) as usize;
    for cycle in cycles {
        for &(channel, value) in &cycle.samples {
            batch.push(cycle.t, channel, value);
        }
        left -= 1;
        if left == 0 {
            out.push(std::mem::replace(&mut batch, SampleBatch::new(id)));
            left = 1 + (cuts.next() % 4) as usize;
        }
    }
    if !batch.samples.is_empty() {
        out.push(batch);
    }
    out
}

/// The oracle: direct in-process submission on a single-shard fleet.
/// Returns per-stream report JSON (close order = open order) and the
/// merged metrics summary JSON.
fn run_in_process(streams: &[Vec<Cycle>]) -> (Vec<Vec<u8>>, Vec<u8>) {
    let mut fleet = Fleet::new(
        catalog(),
        FleetConfig {
            shards: 1,
            runtime: Runtime::with_workers(1),
            ..FleetConfig::default()
        },
    );
    let ids: Vec<StreamId> = (0..streams.len()).map(|_| fleet.open_stream()).collect();
    for (index, cycles) in streams.iter().enumerate() {
        for batch in cut_batches(ids[index], index, cycles) {
            let mut batch = batch;
            loop {
                match fleet.submit(batch) {
                    Ok(()) => break,
                    Err(SubmitError::Saturated { batch: b, .. }) => {
                        fleet.poll();
                        batch = b;
                    }
                    Err(other) => panic!("submit failed: {other}"),
                }
            }
        }
    }
    fleet.poll();
    let reports = ids
        .iter()
        .map(|&id| {
            let (report, _) = fleet.close_stream(id).expect("close");
            serde_json::to_vec(&report).expect("report serializes")
        })
        .collect();
    let summary = serde_json::to_vec(&fleet.metrics().summary()).expect("summary serializes");
    (reports, summary)
}

fn wire_fleet(shards: usize, queue_capacity: usize) -> Arc<Mutex<Fleet>> {
    Arc::new(Mutex::new(Fleet::new(
        catalog(),
        FleetConfig {
            shards,
            queue_capacity,
            runtime: Runtime::with_workers(2),
            ..FleetConfig::default()
        },
    )))
}

/// Drives the full corpus through one producer connection and returns
/// (per-stream report JSON, merged summary JSON, producer stats).
fn run_wire_connection<C: std::io::Read + std::io::Write>(
    mut producer: adassure_fleet::IngestProducer<C>,
    streams: &[Vec<Cycle>],
) -> (Vec<Vec<u8>>, Vec<u8>, adassure_fleet::ProducerStats) {
    let ids: Vec<StreamId> = (0..streams.len())
        .map(|_| producer.open_stream().expect("open over wire"))
        .collect();
    for (index, cycles) in streams.iter().enumerate() {
        for batch in cut_batches(ids[index], index, cycles) {
            producer.submit(&batch).expect("submit over wire");
        }
    }
    let reports = ids
        .iter()
        .map(|&id| producer.close_stream(id).expect("close over wire"))
        .collect();
    let summary = producer.fetch_metrics().expect("metrics over wire");
    producer.flush().expect("final flush");
    let (_, stats) = producer.into_parts();
    (reports, summary, stats)
}

#[test]
fn tcp_ingestion_is_bit_identical_to_in_process_submission() {
    let streams = corpus();
    let (oracle_reports, oracle_summary) = run_in_process(&streams);
    assert!(
        oracle_reports
            .iter()
            .any(|r| String::from_utf8_lossy(r).contains("\"violations\":[{")),
        "the oracle is not vacuous"
    );

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = IngestServer::spawn(
        wire_fleet(4, 64),
        IngestListener::Tcp(listener),
        IngestConfig::default(),
    )
    .expect("spawn server");

    let producer =
        adassure_fleet::ingest::connect_tcp(addr, ProducerConfig::default()).expect("connect");
    let (reports, summary, _) = run_wire_connection(producer, &streams);

    for (index, (wire, oracle)) in reports.iter().zip(&oracle_reports).enumerate() {
        assert_eq!(
            wire, oracle,
            "stream {index} report diverged between wire and in-process"
        );
    }
    assert_eq!(summary, oracle_summary, "merged metrics JSON diverged");

    let stats = server.shutdown();
    assert_eq!(stats.opens, STREAMS as u64);
    assert_eq!(stats.closes, STREAMS as u64);
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.truncated, 0);
}

#[cfg(unix)]
#[test]
fn unix_domain_ingestion_matches_tcp_semantics() {
    let streams = corpus();
    let (oracle_reports, oracle_summary) = run_in_process(&streams);

    let dir = std::env::temp_dir().join(format!("adassure_uds_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let path = dir.join("ingest.sock");
    let _ = std::fs::remove_file(&path);
    let listener = std::os::unix::net::UnixListener::bind(&path).expect("bind uds");
    let server = IngestServer::spawn(
        wire_fleet(2, 32),
        IngestListener::Unix(listener),
        IngestConfig::default(),
    )
    .expect("spawn server");

    let producer =
        adassure_fleet::ingest::connect_unix(&path, ProducerConfig::default()).expect("connect");
    let (reports, summary, _) = run_wire_connection(producer, &streams);

    assert_eq!(reports, oracle_reports);
    assert_eq!(summary, oracle_summary);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Concurrent producers against a deliberately tiny shard queue: every
/// producer must observe `Nack(Saturated)`, rewind, and converge with
/// zero lost samples — per-stream reports bit-identical to the oracle.
#[test]
fn saturated_queues_nack_retry_and_lose_nothing() {
    const PRODUCERS: usize = 4;
    let streams = corpus();
    let (oracle_reports, _) = run_in_process(&streams);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    // queue_capacity 1 + a slow drain cadence forces constant saturation.
    let server = IngestServer::spawn(
        wire_fleet(2, 1),
        IngestListener::Tcp(listener),
        IngestConfig {
            poll_interval_us: 2_000,
            retry_after_us: 200,
            ..IngestConfig::default()
        },
    )
    .expect("spawn server");

    let per_producer = STREAMS / PRODUCERS;
    let results: Vec<(usize, Vec<Vec<u8>>, adassure_fleet::ProducerStats)> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let streams = &streams;
                handles.push(scope.spawn(move || {
                    let mut producer = adassure_fleet::ingest::connect_tcp(
                        addr,
                        ProducerConfig {
                            window: 4,
                            ..ProducerConfig::default()
                        },
                    )
                    .expect("connect");
                    let first = p * per_producer;
                    let my_streams = &streams[first..first + per_producer];
                    let ids: Vec<StreamId> = my_streams
                        .iter()
                        .map(|_| producer.open_stream().expect("open"))
                        .collect();
                    for (offset, cycles) in my_streams.iter().enumerate() {
                        for batch in cut_batches(ids[offset], first + offset, cycles) {
                            producer.submit(&batch).expect("submit");
                        }
                    }
                    let reports: Vec<Vec<u8>> = ids
                        .iter()
                        .map(|&id| producer.close_stream(id).expect("close"))
                        .collect();
                    let (_, stats) = producer.into_parts();
                    (first, reports, stats)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("producer thread"))
                .collect()
        });

    let mut total_saturated = 0;
    for (first, reports, stats) in &results {
        total_saturated += stats.saturated_nacks;
        for (offset, report) in reports.iter().enumerate() {
            assert_eq!(
                report,
                &oracle_reports[first + offset],
                "stream {} diverged under saturation",
                first + offset
            );
        }
    }
    assert!(
        total_saturated > 0,
        "the tiny queue must actually saturate the producers"
    );

    let stats = server.shutdown();
    assert!(
        stats.saturated_nacks > 0,
        "server counted the saturation nacks"
    );
    assert_eq!(stats.closes, STREAMS as u64);
}
