//! Runtime guardian: the ADAssure monitor promoted from a debugging tool to
//! a runtime-assurance guard.
//!
//! [`Guardian`] wraps the full control stack
//! ([`adassure_control::pipeline::AdStack`]) together with two in-loop
//! [`OnlineChecker`]s fed the same (possibly degraded) telemetry:
//!
//! * the **primary** checker runs the catalog at its nominal thresholds and
//!   is the guardian's reporting source;
//! * the **widened** checker runs the same catalog with every threshold
//!   scaled by [`GuardianConfig::degraded_threshold_scale`] and acts as the
//!   confirmation stage for the safe stop.
//!
//! The guardian is a three-state machine. In `Nominal` it passes the
//! stack's controls through unchanged. Any triggering violation — or any
//! monitor losing telemetry health — moves it to `Degraded`, a limp-home
//! mode that keeps the nominal steering but governs acceleration so the
//! vehicle coasts down to [`GuardianConfig::degraded_speed_cap`]. Only when
//! the *widened* checker holds an open triggering episode for a full
//! [`GuardianConfig::confirm_window`] does the guardian escalate to
//! `SafeStop` (steering frozen, maximum comfortable braking). If instead
//! the telemetry heals and no triggering episode stays open for
//! [`GuardianConfig::recovery_cycles`] consecutive cycles, the guardian
//! returns to `Nominal`. This keeps transient link faults (dropouts, NaN
//! bursts, jitter) from escalating a healthy vehicle into a spurious stop —
//! the axis experiment T5 sweeps — while a genuine attack still stops the
//! car within a fraction of a second. This is the natural "from debugging
//! to runtime assurance" extension of the methodology, evaluated by
//! experiment F5.

use adassure_attacks::{ChannelFaultInjector, FaultInjectorState};
use adassure_control::pipeline::{AdStack, StackState};
use adassure_core::assertion::Severity;
use adassure_core::{Assertion, CheckerState, HealthConfig, OnlineChecker, Violation};
use adassure_obs::{
    Event as ObsEvent, EventFilter, EventSink, Guard as ObsGuard, MetricsSnapshot, ObsConfig,
    TransitionGrid,
};
use adassure_sim::engine::{DriveCtx, Driver};
use adassure_sim::vehicle::Controls;
use adassure_trace::{well_known as sig, Trace};

/// Configuration of the guardian's intervention policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardianConfig {
    /// Minimum severity of a violation that triggers an intervention.
    pub trigger_severity: Severity,
    /// Braking deceleration commanded during the safe stop (m/s², positive).
    pub stop_decel: f64,
    /// Speed the limp-home governor decays towards while `Degraded` (m/s).
    pub degraded_speed_cap: f64,
    /// How long a triggering episode must stay open on the *widened*
    /// checker before `Degraded` escalates to `SafeStop` (s).
    pub confirm_window: f64,
    /// Consecutive clean cycles in `Degraded` before returning to
    /// `Nominal`.
    pub recovery_cycles: u32,
    /// Threshold scale factor of the widened confirmation catalog. Factors
    /// above 1 *loosen* every condition: `AtMost` limits and `Fresh`
    /// horizons grow, and the catalog's `AtLeast` floors are negative, so
    /// they sink further.
    pub degraded_threshold_scale: f64,
    /// Telemetry-health policy of both in-loop checkers.
    pub health: HealthConfig,
}

impl Default for GuardianConfig {
    fn default() -> Self {
        GuardianConfig {
            trigger_severity: Severity::Critical,
            stop_decel: 4.0,
            degraded_speed_cap: 4.0,
            confirm_window: 0.45,
            recovery_cycles: 50,
            degraded_threshold_scale: 1.5,
            health: HealthConfig {
                stale_after: 1.0,
                quarantine_after: 200,
                recover_after: 25,
            },
        }
    }
}

/// The guardian's operating state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardState {
    /// Passing the stack's controls through unchanged.
    Nominal,
    /// Limp-home mode: nominal steering, speed governed down to the
    /// configured cap, waiting for the widened checker to either confirm
    /// the fault or for the telemetry to heal.
    Degraded {
        /// Time the degraded mode was entered (s).
        since: f64,
    },
    /// Safe stop engaged (terminal).
    SafeStop {
        /// Time the stop was engaged (s).
        since: f64,
        /// Steering angle held during the stop (rad).
        held_steer: f64,
    },
}

/// A monitored control stack with limp-home and safe-stop fallbacks.
#[derive(Debug)]
pub struct Guardian {
    stack: AdStack,
    /// Nominal-threshold checker; the guardian's reporting source.
    primary: OnlineChecker,
    /// Loosened-threshold checker confirming escalation to the safe stop.
    widened: OnlineChecker,
    config: GuardianConfig,
    state: GuardState,
    trigger: Option<Violation>,
    clean_streak: u32,
    degraded_cycles: u64,
    fault: Option<ChannelFaultInjector>,
    /// Mode transitions (nominal/degraded/safe_stop) for observability.
    guard_grid: TransitionGrid,
    /// Guardian-level event destination (mode transitions only; checker
    /// events flow through the checkers' own sinks).
    sink: Option<Box<dyn EventSink>>,
    filter: EventFilter,
    events_emitted: u64,
    run_id: u64,
}

/// Signals the guardian forwards from the trace into the in-loop checkers.
/// (Command signals are fed directly from the stack's output, because the
/// engine records them only *after* the driver returns.)
const FORWARDED: &[&str] = &[
    sig::GNSS_X,
    sig::GNSS_Y,
    sig::GNSS_SPEED,
    sig::GNSS_JUMP,
    sig::WHEEL_SPEED,
    sig::WHEEL_ACCEL,
    sig::IMU_YAW_RATE,
    sig::IMU_ACCEL,
    sig::COMPASS_HEADING,
    sig::EST_X,
    sig::EST_Y,
    sig::EST_HEADING,
    sig::EST_SPEED,
    sig::INNOVATION,
    sig::XTRACK_ERR,
    sig::HEADING_ERR,
    sig::TARGET_SPEED,
    sig::PROGRESS,
    sig::STEER_ACTUAL,
];

impl Guardian {
    /// Wraps `stack`, monitoring it with `catalog`.
    ///
    /// Note that [`Temporal::Eventually`](adassure_core::Temporal)
    /// assertions (A12) never fire mid-run, so they are inert as triggers;
    /// include them or not as you wish.
    pub fn new(
        stack: AdStack,
        catalog: impl IntoIterator<Item = Assertion>,
        config: GuardianConfig,
    ) -> Self {
        let catalog: Vec<Assertion> = catalog.into_iter().collect();
        let widened: Vec<Assertion> = catalog
            .iter()
            .map(|a| a.with_scaled_threshold(config.degraded_threshold_scale))
            .collect();
        Guardian {
            stack,
            primary: OnlineChecker::with_health(catalog, config.health),
            widened: OnlineChecker::with_health(widened, config.health),
            config,
            state: GuardState::Nominal,
            trigger: None,
            clean_streak: 0,
            degraded_cycles: 0,
            fault: None,
            guard_grid: TransitionGrid::new(),
            sink: None,
            filter: EventFilter::none(),
            events_emitted: 0,
            run_id: 0,
        }
    }

    /// Sends guardian mode-transition events (filtered per `obs`) to
    /// `sink`. With `obs.events` off the sink is dropped and only the
    /// transition counters run.
    pub fn with_event_sink(mut self, obs: &ObsConfig, sink: Box<dyn EventSink>) -> Self {
        self.filter = obs.filter.clone();
        self.sink = obs.events.then_some(sink);
        self
    }

    /// Stamps `run` on emitted events (campaign cells use their index).
    pub fn set_run_id(&mut self, run: u64) {
        self.run_id = run;
    }

    /// Routes every forwarded telemetry sample through `injector` before it
    /// reaches the in-loop checkers, modelling a faulty monitor link. The
    /// vehicle and its control stack are unaffected.
    pub fn with_telemetry_fault(mut self, injector: ChannelFaultInjector) -> Self {
        self.fault = Some(injector);
        self
    }

    /// Current operating state.
    pub fn state(&self) -> GuardState {
        self.state
    }

    /// The widened-checker violation that confirmed the safe stop, if
    /// engaged.
    pub fn trigger(&self) -> Option<&Violation> {
        self.trigger.as_ref()
    }

    /// All violations observed by the primary checker so far (triggering or
    /// not).
    pub fn violations(&self) -> &[Violation] {
        self.primary.violations()
    }

    /// Cycles spent in [`GuardState::Degraded`] so far.
    pub fn degraded_cycles(&self) -> u64 {
        self.degraded_cycles
    }

    /// The telemetry-fault injector, when one was installed.
    pub fn telemetry_fault(&self) -> Option<&ChannelFaultInjector> {
        self.fault.as_ref()
    }

    /// Consumes the guardian, returning the primary monitor's final report
    /// at `end_time`.
    pub fn into_report(self, end_time: f64) -> adassure_core::CheckReport {
        self.into_report_observed(end_time).0
    }

    /// [`into_report`](Guardian::into_report) plus the final metrics
    /// snapshot — unlike [`metrics`](Guardian::metrics), this includes the
    /// post-finish episode accounting (still-open `Eventually` violations
    /// raised at `end_time`) and flushes any attached event sink.
    pub fn into_report_observed(
        self,
        end_time: f64,
    ) -> (adassure_core::CheckReport, MetricsSnapshot) {
        let guard_transitions = self.guard_grid.sparse([
            ObsGuard::Nominal.name(),
            ObsGuard::Degraded.name(),
            ObsGuard::SafeStop.name(),
        ]);
        let guardian_events = self.events_emitted;
        let (report, mut snap, _sink) = self.primary.finish_observed(end_time);
        snap.guard_transitions = guard_transitions;
        snap.events_emitted += guardian_events;
        (report, snap)
    }

    /// The primary checker's metrics with the guardian's mode-transition
    /// counters and event tally folded in.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.primary.metrics();
        snap.guard_transitions = self.guard_grid.sparse([
            ObsGuard::Nominal.name(),
            ObsGuard::Degraded.name(),
            ObsGuard::SafeStop.name(),
        ]);
        snap.events_emitted += self.events_emitted;
        snap
    }

    /// Feeds one delivered telemetry value to both checkers.
    fn feed(&mut self, name: &str, value: f64) {
        self.primary.update(name, value);
        self.widened.update(name, value);
    }

    /// Captures the guardian's complete mutable state (control stack, both
    /// in-loop checkers, mode machine, telemetry-fault injector) as plain
    /// data, for mid-run checkpoints. Must be called between engine cycles.
    pub fn save_state(&self) -> GuardianState {
        GuardianState {
            stack: self.stack.save_state(),
            primary: self.primary.save_state(),
            widened: self.widened.save_state(),
            state: self.state,
            trigger: self.trigger.clone(),
            clean_streak: self.clean_streak,
            degraded_cycles: self.degraded_cycles,
            fault: self.fault.as_ref().map(ChannelFaultInjector::state),
            guard_grid: self.guard_grid.counts(),
            events_emitted: self.events_emitted,
        }
    }

    /// Reinstates a state captured with [`Guardian::save_state`]. The
    /// guardian must have been built with the same catalog, configuration
    /// and (when present) telemetry-fault spec. Event sinks are untouched.
    ///
    /// # Errors
    ///
    /// Returns a message when the state's shape does not match this
    /// guardian (different catalog, stack kind, or fault configuration).
    pub fn restore_state(&mut self, s: GuardianState) -> Result<(), String> {
        self.stack.restore_state(&s.stack)?;
        self.primary =
            OnlineChecker::restore(self.primary.plan().clone(), self.config.health, s.primary)
                .map_err(|e| format!("primary checker: {e}"))?;
        self.widened =
            OnlineChecker::restore(self.widened.plan().clone(), self.config.health, s.widened)
                .map_err(|e| format!("widened checker: {e}"))?;
        match (&mut self.fault, &s.fault) {
            (Some(inj), Some(fs)) => inj.restore(fs),
            (None, None) => {}
            (have, _) => {
                return Err(format!(
                    "fault injector mismatch: guardian has {}, snapshot has {}",
                    if have.is_some() { "one" } else { "none" },
                    if s.fault.is_some() { "one" } else { "none" }
                ));
            }
        }
        self.state = s.state;
        self.trigger = s.trigger;
        self.clean_streak = s.clean_streak;
        self.degraded_cycles = s.degraded_cycles;
        self.guard_grid = TransitionGrid::from_counts(s.guard_grid);
        self.events_emitted = s.events_emitted;
        Ok(())
    }
}

/// A plain-data snapshot of a [`Guardian`]'s complete mutable state,
/// captured with [`Guardian::save_state`].
#[derive(Debug, Clone)]
pub struct GuardianState {
    /// The wrapped control stack's state.
    pub stack: StackState,
    /// The nominal-threshold checker's state.
    pub primary: CheckerState,
    /// The widened confirmation checker's state.
    pub widened: CheckerState,
    /// The mode machine's operating state.
    pub state: GuardState,
    /// The widened-checker violation that confirmed the safe stop, if any.
    pub trigger: Option<Violation>,
    /// Consecutive clean cycles counted towards recovery.
    pub clean_streak: u32,
    /// Cycles spent in [`GuardState::Degraded`] so far.
    pub degraded_cycles: u64,
    /// The telemetry-fault injector's state, when one is installed.
    pub fault: Option<FaultInjectorState>,
    /// Mode-transition counters.
    pub guard_grid: [[u64; 3]; 3],
    /// Guardian-level events emitted so far.
    pub events_emitted: u64,
}

/// Projects the payload-carrying [`GuardState`] onto the 3-state
/// observability enum.
fn obs_guard(state: GuardState) -> ObsGuard {
    match state {
        GuardState::Nominal => ObsGuard::Nominal,
        GuardState::Degraded { .. } => ObsGuard::Degraded,
        GuardState::SafeStop { .. } => ObsGuard::SafeStop,
    }
}

impl Driver for Guardian {
    fn control(&mut self, ctx: &DriveCtx<'_>, trace: &mut Trace) -> Controls {
        let nominal = self.stack.control(ctx, trace);

        // Feed this cycle's signals to the in-loop checkers. Sensor and
        // pipeline signals were recorded into the trace this cycle (by the
        // engine and the stack respectively); command signals come from the
        // controls we are about to return.
        self.primary
            .begin_cycle(ctx.time)
            .expect("engine cycles are strictly time-ordered");
        self.widened
            .begin_cycle(ctx.time)
            .expect("engine cycles are strictly time-ordered");
        for name in FORWARDED {
            if let Some(sample) = trace.series_by_name(name).and_then(|s| s.last()) {
                // Actuator feedback is recorded by the engine *after* the
                // driver returns, so its newest sample is one cycle old —
                // feed it anyway (sample-and-hold). Every other signal must
                // carry this cycle's timestamp, so that e.g. the GNSS
                // freshness assertion still sees fixes age.
                let fresh_enough = if *name == sig::STEER_ACTUAL {
                    sample.time >= ctx.time - ctx.dt * 1.5
                } else {
                    sample.time == ctx.time
                };
                if !fresh_enough {
                    continue;
                }
                match &mut self.fault {
                    Some(injector) => {
                        let delivered = injector.apply(name, ctx.time, sample.value);
                        for value in delivered.as_slice() {
                            self.primary.update(*name, *value);
                            self.widened.update(*name, *value);
                        }
                    }
                    None => self.feed(name, sample.value),
                }
            }
        }
        // The guardian observes its own output directly; the telemetry link
        // sits between the stack and the monitor, not here.
        self.feed(sig::STEER_CMD, nominal.steer);
        self.feed(sig::ACCEL_CMD, nominal.accel);
        let fresh = self.primary.end_cycle();
        self.widened.end_cycle();

        let trigger_severity = self.config.trigger_severity;
        let fresh_trigger = fresh > 0
            && self
                .primary
                .violations()
                .iter()
                .rev()
                .take(fresh)
                .any(|v| v.severity >= trigger_severity);

        let prev_mode = obs_guard(self.state);
        match self.state {
            GuardState::Nominal => {
                if fresh_trigger || !self.primary.all_active() {
                    self.state = GuardState::Degraded { since: ctx.time };
                    self.clean_streak = 0;
                }
            }
            GuardState::Degraded { .. } => {
                let confirmed = self
                    .widened
                    .open_episode_onset(trigger_severity)
                    .is_some_and(|onset| ctx.time - onset >= self.config.confirm_window);
                if confirmed {
                    self.trigger = self
                        .widened
                        .violations()
                        .iter()
                        .rev()
                        .find(|v| v.severity >= trigger_severity && v.recovered.is_none())
                        .cloned();
                    self.state = GuardState::SafeStop {
                        since: ctx.time,
                        held_steer: nominal.steer,
                    };
                } else {
                    let alarm = fresh_trigger
                        || self.primary.open_episode_onset(trigger_severity).is_some()
                        || self.widened.open_episode_onset(trigger_severity).is_some();
                    if alarm {
                        // A standing violation is positive evidence against
                        // recovery: start the count over.
                        self.clean_streak = 0;
                    } else if self.primary.all_active() {
                        self.clean_streak += 1;
                        if self.clean_streak >= self.config.recovery_cycles {
                            self.state = GuardState::Nominal;
                            self.clean_streak = 0;
                        }
                    }
                    // Otherwise the telemetry is inconclusive: evidence for
                    // neither recovery nor fault, so the streak *freezes*.
                    // Resetting here would let a flaky-but-healthy link —
                    // one NaN every few hundred cycles — pin the guardian
                    // in Degraded forever (see DESIGN.md §8).
                }
            }
            GuardState::SafeStop { .. } => {}
        }
        let new_mode = obs_guard(self.state);
        if new_mode != prev_mode {
            self.guard_grid.record(prev_mode.index(), new_mode.index());
            let ev = ObsEvent::GuardTransition {
                run: self.run_id,
                t: ctx.time,
                from: prev_mode,
                to: new_mode,
            };
            if let Some(sink) = &mut self.sink {
                if self.filter.accepts(&ev) {
                    sink.emit(ev);
                    self.events_emitted += 1;
                }
            }
        }

        match self.state {
            GuardState::Nominal => nominal,
            GuardState::Degraded { .. } => {
                self.degraded_cycles += 1;
                // Govern towards the cap using the stack's own speed
                // estimate from the trace — the telemetry link faults only
                // the monitor's copy, not the stack's record.
                let speed = trace
                    .series_by_name(sig::EST_SPEED)
                    .and_then(|s| s.last())
                    .map_or(0.0, |s| s.value);
                let governed = nominal
                    .accel
                    .min(self.config.degraded_speed_cap - speed)
                    .max(-self.config.stop_decel);
                Controls::new(nominal.steer, governed)
            }
            GuardState::SafeStop { held_steer, .. } => {
                Controls::new(held_steer, -self.config.stop_decel)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_attacks::{campaign::AttackSpec, AttackKind, FaultKind, FaultSpec, Window};
    use adassure_control::ControllerKind;
    use adassure_core::catalog::{self, CatalogConfig};
    use adassure_scenarios::{run, Scenario, ScenarioKind};
    use adassure_sim::engine::Engine;
    use adassure_sim::geometry::Vec2;

    fn guardian_for(scenario: &Scenario) -> Guardian {
        let stack = AdStack::new(
            run::stack_config(scenario, ControllerKind::PurePursuit),
            scenario.track.clone(),
        );
        let cat = catalog::build(&CatalogConfig::default());
        Guardian::new(stack, cat, GuardianConfig::default())
    }

    #[test]
    fn clean_run_stays_nominal() {
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let mut guardian = guardian_for(&scenario);
        let out = run::engine_for(&scenario, 1).run(&mut guardian).unwrap();
        assert!(out.reached_goal);
        assert_eq!(guardian.state(), GuardState::Nominal);
        assert!(guardian.trigger().is_none());
        assert_eq!(guardian.degraded_cycles(), 0);
    }

    #[test]
    fn jump_attack_engages_safe_stop_and_vehicle_halts() {
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let mut guardian = guardian_for(&scenario);
        let attack = AttackSpec::new(
            AttackKind::GnssJump {
                offset: Vec2::new(12.0, 8.0),
            },
            Window::from_start(scenario.attack_start),
        );
        let mut injector = attack.injector(1);
        let engine: Engine = run::engine_for(&scenario, 1);
        let out = engine.run_with_tap(&mut guardian, &mut injector).unwrap();
        match guardian.state() {
            GuardState::SafeStop { since, .. } => {
                assert!(since >= scenario.attack_start);
                assert!(since < scenario.attack_start + 1.0, "engaged at {since}");
            }
            other => panic!("guardian must stop under a jump attack, got {other:?}"),
        }
        assert!(guardian.trigger().is_some());
        assert!(
            guardian.degraded_cycles() > 0,
            "the stop is reached through the degraded mode"
        );
        assert!(
            out.final_state.speed < 0.1,
            "vehicle should be stopped, speed {}",
            out.final_state.speed
        );
        assert!(!out.reached_goal);
    }

    #[test]
    fn severity_filter_ignores_low_severity_violations() {
        use adassure_core::{Condition, SignalExpr};
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let stack = AdStack::new(
            run::stack_config(&scenario, ControllerKind::PurePursuit),
            scenario.track.clone(),
        );
        // A warning-severity assertion that always fires once moving.
        let nag = Assertion::new(
            "NAG",
            "always fires",
            Severity::Warning,
            Condition::AtMost {
                expr: SignalExpr::signal(sig::EST_SPEED),
                limit: 0.5,
            },
        )
        .with_grace(5.0);
        let mut guardian = Guardian::new(stack, [nag], GuardianConfig::default());
        let out = run::engine_for(&scenario, 1).run(&mut guardian).unwrap();
        assert_eq!(
            guardian.state(),
            GuardState::Nominal,
            "warnings must not stop the car"
        );
        assert!(
            !guardian.violations().is_empty(),
            "but they are still logged"
        );
        assert!(out.reached_goal);
    }

    #[test]
    fn report_is_available_after_the_run() {
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let mut guardian = guardian_for(&scenario);
        let attack = AttackSpec::new(AttackKind::GnssDropout, Window::from_start(12.0));
        let mut injector = attack.injector(2);
        let out = run::engine_for(&scenario, 2)
            .run_with_tap(&mut guardian, &mut injector)
            .unwrap();
        let end = out.trace.span().unwrap().1;
        let report = guardian.into_report(end);
        assert!(report.violations_of("A13").next().is_some());
    }

    #[test]
    fn monitor_link_dropout_does_not_false_stop() {
        // A clean vehicle whose *telemetry link* loses 20% of its samples,
        // across the whole F5 scenario set: the guardian may degrade
        // transiently but must never stop the car, and must be back to
        // nominal once the fault clears.
        for kind in ScenarioKind::GUARDIAN_SET {
            let scenario = Scenario::of_kind(kind).unwrap();
            let fault = FaultSpec::new(
                FaultKind::Dropout,
                0.2,
                Window::new(scenario.attack_start, scenario.attack_start + 30.0),
            );
            let mut guardian = guardian_for(&scenario).with_telemetry_fault(fault.injector(5));
            let out = run::engine_for(&scenario, 5).run(&mut guardian).unwrap();
            assert!(
                out.reached_goal,
                "{kind}: a governed run still reaches the goal"
            );
            assert_eq!(
                guardian.state(),
                GuardState::Nominal,
                "{kind}: dropout alone must not strand the guardian"
            );
            assert!(
                guardian.trigger().is_none(),
                "{kind}: and must not stop the car"
            );
            let inj = guardian.telemetry_fault().unwrap();
            assert!(inj.dropped() > 0, "{kind}: the fault must actually fire");
            for v in guardian.violations() {
                assert!(v.value.is_finite(), "{kind}: values stay finite: {v:?}");
            }
        }
    }

    #[test]
    fn nan_burst_degrades_then_recovers() {
        // NaN storms on the link poison monitor inputs: the checkers go
        // inconclusive instead of raising Critical alarms, the guardian
        // limps home, and once the storm passes it returns to nominal.
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let fault = FaultSpec::new(
            FaultKind::NanBurst,
            0.3,
            Window::new(scenario.attack_start, scenario.attack_start + 8.0),
        );
        let mut guardian = guardian_for(&scenario).with_telemetry_fault(fault.injector(9));
        let out = run::engine_for(&scenario, 9).run(&mut guardian).unwrap();
        assert_eq!(
            guardian.state(),
            GuardState::Nominal,
            "guardian must recover once the storm passes"
        );
        assert!(guardian.trigger().is_none(), "no safe stop");
        assert!(
            guardian.degraded_cycles() > 0,
            "poisoned telemetry must have degraded the guardian"
        );
        let end = out.trace.span().unwrap().1;
        let report = guardian.into_report(end);
        assert!(
            report.inconclusive_cycles > 0,
            "poisoned cycles surface as inconclusive, not as violations"
        );
    }

    #[test]
    fn flaky_link_freezes_streak_and_still_recovers() {
        // Regression for the recovery-streak reset: a *persistent* flaky
        // link (one NaN every few hundred samples, until the end of the
        // run) keeps interrupting the guardian's clean streak with
        // Inconclusive cycles. Those cycles are evidence of nothing, so
        // they must freeze the streak, not reset it — with a reset, the
        // streak can never span `recovery_cycles` consecutive cycles and
        // the guardian stays Degraded forever on a healthy vehicle.
        use adassure_obs::VecSink;

        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let fault = FaultSpec::new(
            FaultKind::NanBurst,
            0.001,
            Window::from_start(scenario.attack_start),
        );
        // A recovery window much longer than the typical gap between NaN
        // hits: cumulative clean cycles reach it easily, consecutive ones
        // never would.
        let config = GuardianConfig {
            recovery_cycles: 400,
            ..GuardianConfig::default()
        };
        let stack = AdStack::new(
            run::stack_config(&scenario, ControllerKind::PurePursuit),
            scenario.track.clone(),
        );
        let cat = catalog::build(&CatalogConfig::default());
        let mut guardian = Guardian::new(stack, cat, config)
            .with_telemetry_fault(fault.injector(11))
            .with_event_sink(&ObsConfig::enabled(), Box::new(VecSink::default()));
        run::engine_for(&scenario, 11).run(&mut guardian).unwrap();

        assert!(guardian.trigger().is_none(), "no safe stop on a flaky link");
        let metrics = guardian.metrics();
        let recoveries = metrics
            .guard_transitions
            .iter()
            .find(|t| t.from == "degraded" && t.to == "nominal")
            .map_or(0, |t| t.count);
        assert!(
            recoveries >= 1,
            "frozen streak must let the guardian recover; transitions: {:?}",
            metrics.guard_transitions
        );
        assert!(
            !metrics
                .guard_transitions
                .iter()
                .any(|t| t.to == "safe_stop"),
            "flakiness alone must never escalate"
        );
        assert!(
            metrics.events_emitted >= 2,
            "transitions were emitted as events"
        );
    }
}
