//! Network chaos soak: the `net_soak` workload run through seeded
//! transport faults and a full mid-campaign server crash, proving the
//! crash-recovery stack end to end — reconnecting producers
//! ([`adassure_fleet::ResilientProducer`]), session resumption with ack
//! replay, periodic checkpoints, and restore-on-restart — and recording
//! the sustained numbers to `BENCH_chaos.json`.
//!
//! Every producer connection runs over a
//! [`adassure_fleet::ChaosTransport`] that severs the socket mid-frame
//! at a seeded rate. Two-fifths of the way through the campaign the
//! harness hard-kills the server (no final drain — post-checkpoint
//! progress is deliberately lost), restores a fresh fleet from the last
//! periodic checkpoint on a *new* port, and lets the producers
//! reconnect, resume their sessions, and replay the gap from their
//! retention buffers.
//!
//! The acceptance bar is byte-identity: after the dust settles, every
//! stream's final report must be byte-for-byte equal to an undisturbed
//! in-process run of the same seeded telemetry, and the restored fleet
//! must have checked exactly `streams x cycles` cycles — zero lost,
//! zero duplicated.
//!
//! All streams are opened (and a checkpoint taken) before the first
//! sample: a stream's identity is assigned at open time, so opens must
//! be checkpoint-covered before a crash can be survived transparently
//! (DESIGN.md §13).
//!
//! ```text
//! chaos_soak [--streams N] [--cycles N] [--shards N] [--batch N]
//!            [--producers N] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` is the CI mode. Regenerate the committed numbers with:
//! `cargo run --release -p adassure-bench --bin chaos_soak`

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use adassure_core::{Assertion, Condition, Severity, SignalExpr};
use adassure_exp::Runtime;
use adassure_fleet::{
    restore_server, ChaosConfig, ChaosTransport, Fleet, FleetConfig, IngestConfig, IngestListener,
    IngestServer, ProducerConfig, ProducerStats, ReconnectPolicy, ResilientProducer, SampleBatch,
    SessionSeed, StreamId, SubmitError, Transport,
};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    benchmark: &'static str,
    regenerate: &'static str,
    transport: &'static str,
    producers: usize,
    streams: usize,
    shards: usize,
    workers: usize,
    cycles_per_stream: usize,
    cycles: u64,
    samples: u64,
    violations: u64,
    wall_s: f64,
    samples_per_sec: f64,
    cycles_per_sec: f64,
    /// Successful session resumptions: one per producer for the server
    /// crash, plus one per chaos-severed connection.
    reconnects: u64,
    /// Frames re-sent during resumes, from windows and replay retention.
    replayed_frames: u64,
    /// Periodic checkpoints written before the crash (the restore point
    /// is the last of these).
    checkpoints_before_crash: u64,
    /// Hard server kills survived mid-campaign.
    server_crashes: u64,
    /// Whether every per-stream report was byte-identical to the
    /// undisturbed in-process oracle. The run aborts on a mismatch, so a
    /// written report always says true.
    oracle_byte_identical: bool,
}

struct Args {
    streams: usize,
    cycles: usize,
    shards: usize,
    batch: usize,
    producers: usize,
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: 0,
        cycles: 0,
        shards: 8,
        batch: 32,
        producers: 4,
        smoke: false,
        out: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match flag.as_str() {
            "--streams" => args.streams = grab("--streams"),
            "--cycles" => args.cycles = grab("--cycles"),
            "--shards" => args.shards = grab("--shards"),
            "--batch" => args.batch = grab("--batch").max(1),
            "--producers" => args.producers = grab("--producers").max(1),
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.streams == 0 {
        args.streams = if args.smoke { 64 } else { 1_024 };
    }
    if args.cycles == 0 {
        args.cycles = if args.smoke { 48 } else { 1_200 };
    }
    if args.out.is_empty() {
        args.out = "BENCH_chaos.json".into();
    }
    assert!(args.cycles >= 2, "need at least 2 cycles to crash mid-run");
    // Every producer owns an equal slice of the streams, and the batch
    // size is capped so there are at least two waves — the crash has to
    // land strictly mid-campaign.
    args.streams = args.streams.next_multiple_of(args.producers);
    args.batch = args.batch.min(args.cycles.div_ceil(2));
    args
}

fn catalog() -> Vec<Assertion> {
    vec![
        Assertion::new(
            "N1",
            "bounded cross-track error",
            Severity::Critical,
            Condition::AtMost {
                expr: SignalExpr::signal("xtrack").abs(),
                limit: 1.0,
            },
        ),
        Assertion::new(
            "N2",
            "speed stays non-negative",
            Severity::Warning,
            Condition::AtLeast {
                expr: SignalExpr::signal("speed"),
                limit: 0.0,
            },
        ),
        Assertion::new(
            "N3",
            "gnss fix is fresh",
            Severity::Critical,
            Condition::Fresh {
                signal: "gnss_x".into(),
                max_age: 0.5,
            },
        ),
    ]
}

/// Seeded per-stream telemetry synthesizer — identical constants to
/// `net_soak`, so the chaos numbers are directly comparable.
struct Synth {
    state: u64,
    t: f64,
}

impl Synth {
    fn new(seed: u64) -> Self {
        Synth {
            state: seed.wrapping_mul(2654435761).wrapping_add(12345),
            t: 0.0,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    fn uniform(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }

    fn cycle_into(&mut self, batch: &mut SampleBatch) {
        self.t += 0.05;
        let roll = self.uniform();
        let xtrack = if roll < 0.02 {
            1.0 + self.uniform() * 2.0
        } else {
            self.uniform() * 0.9
        };
        batch.push(self.t, "xtrack", xtrack);
        batch.push(self.t, "speed", 4.0 + self.uniform());
        if self.uniform() > 0.2 {
            batch.push(self.t, "gnss_x", self.uniform() * 50.0);
        }
    }
}

fn fleet_config(shards: usize, runtime: Runtime) -> FleetConfig {
    FleetConfig {
        shards,
        runtime,
        ..FleetConfig::default()
    }
}

/// The undisturbed truth: the same seeded telemetry run in-process — no
/// sockets, no faults, no crash. Returns each stream's report JSON,
/// indexed by synth seed.
fn oracle_reports(args: &Args, runtime: Runtime) -> Vec<String> {
    let mut fleet = Fleet::new(catalog(), fleet_config(args.shards, runtime));
    let ids: Vec<StreamId> = (0..args.streams).map(|_| fleet.open_stream()).collect();
    let mut synths: Vec<Synth> = (0..args.streams).map(|k| Synth::new(k as u64)).collect();
    let waves = args.cycles.div_ceil(args.batch);
    for wave in 0..waves {
        let cycles_this_wave = args.batch.min(args.cycles - wave * args.batch);
        for (id, synth) in ids.iter().zip(synths.iter_mut()) {
            let mut batch = SampleBatch::new(*id);
            for _ in 0..cycles_this_wave {
                synth.cycle_into(&mut batch);
            }
            let mut pending = batch;
            loop {
                match fleet.submit(pending) {
                    Ok(()) => break,
                    Err(SubmitError::Saturated { batch, .. }) => {
                        fleet.poll();
                        pending = batch;
                    }
                    Err(other) => panic!("oracle submit failed: {other}"),
                }
            }
        }
        fleet.poll();
    }
    ids.iter()
        .map(|&id| {
            let (report, _) = fleet.close_stream(id).expect("oracle close");
            serde_json::to_string(&report).expect("report serializes")
        })
        .collect()
}

/// Periodic checkpoint writer; stopped (and joined) before the crash so
/// the file on disk is a consistent pre-crash snapshot.
struct CheckpointLoop {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<u64>,
}

fn start_checkpoints(server: &IngestServer, path: PathBuf, every: Duration) -> CheckpointLoop {
    let stop = Arc::new(AtomicBool::new(false));
    let checkpointer = server.checkpointer();
    let thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut written = 0u64;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(every);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match checkpointer.checkpoint_to(&path) {
                    Ok(()) => written += 1,
                    Err(e) => eprintln!("chaos_soak: checkpoint failed: {e}"),
                }
            }
            written
        })
    };
    CheckpointLoop { stop, thread }
}

impl CheckpointLoop {
    fn finish(self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        self.thread.join().expect("checkpoint thread")
    }
}

fn spawn_server(fleet: Arc<Mutex<Fleet>>, seed: Option<SessionSeed>) -> IngestServer {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let config = IngestConfig::default();
    match seed {
        Some(seed) => {
            IngestServer::spawn_restored(fleet, IngestListener::Tcp(listener), config, seed)
        }
        None => IngestServer::spawn(fleet, IngestListener::Tcp(listener), config),
    }
    .expect("spawn ingest server")
}

/// One producer thread's campaign: open, wait out the initial
/// checkpoint, submit waves (pausing at the crash barrier), close.
/// Returns the final stats and the per-synth-seed report JSONs.
fn run_producer(
    p: usize,
    args: &Args,
    addr: &Arc<Mutex<std::net::SocketAddr>>,
    barrier: &Barrier,
    crash_wave: usize,
) -> (ProducerStats, Vec<(usize, String)>) {
    let per_producer = args.streams / args.producers;
    let chaos = ChaosConfig {
        write_cut: 0.0008,
        read_cut: 0.0008,
        delay: 0.0,
        delay_us: 0,
    };
    let mut dial = 0u64;
    let addr_for_dial = Arc::clone(addr);
    let connect = Box::new(
        move |_attempt: u32| -> std::io::Result<Box<dyn Transport>> {
            dial += 1;
            let conn = TcpStream::connect(*addr_for_dial.lock().expect("addr lock"))?;
            conn.set_nodelay(true)?;
            // A distinct seed per (producer, dial) keeps the fault pattern
            // deterministic but different on every reconnect.
            let seed = ((p as u64 + 1) << 32) | dial;
            Ok(Box::new(ChaosTransport::new(conn, chaos, seed)))
        },
    );
    let mut producer = ResilientProducer::connect(
        connect,
        ProducerConfig {
            window: 64,
            // Must cover the worst-case frame gap between two periodic
            // checkpoints; ~1.5k frames per producer at full tilt.
            retain_for_replay: 8192,
            ..ProducerConfig::default()
        },
        ReconnectPolicy {
            max_attempts: 40,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            seed: p as u64,
        },
    )
    .expect("connect producer");

    let ids: Vec<StreamId> = (0..per_producer)
        .map(|_| producer.open_stream().expect("open stream"))
        .collect();
    let mut synths: Vec<Synth> = (0..per_producer)
        .map(|k| Synth::new((p * per_producer + k) as u64))
        .collect();
    barrier.wait(); // all streams open
    barrier.wait(); // initial checkpoint covers the opens

    let waves = args.cycles.div_ceil(args.batch);
    for wave in 0..waves {
        if wave == crash_wave {
            barrier.wait(); // crash point
            barrier.wait(); // server restarted on a new port
        }
        let cycles_this_wave = args.batch.min(args.cycles - wave * args.batch);
        for (id, synth) in ids.iter().zip(synths.iter_mut()) {
            let mut batch = SampleBatch::new(*id);
            for _ in 0..cycles_this_wave {
                synth.cycle_into(&mut batch);
            }
            producer.submit(&batch).expect("submit survives chaos");
        }
    }
    let mut reports = Vec::with_capacity(per_producer);
    for (k, id) in ids.iter().enumerate() {
        let json = producer.close_stream(*id).expect("close survives chaos");
        reports.push((
            p * per_producer + k,
            String::from_utf8(json).expect("utf8 report"),
        ));
    }
    (producer.stats(), reports)
}

fn main() {
    let args = parse_args();
    let runtime = Runtime::global();
    let ckpt_dir = std::env::temp_dir().join(format!("adassure-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).expect("checkpoint dir");
    let ckpt_path = ckpt_dir.join("fleet.adckpt");
    let ckpt_every = Duration::from_millis(250);

    let first_fleet = Arc::new(Mutex::new(Fleet::new(
        catalog(),
        fleet_config(args.shards, runtime),
    )));
    let first_server = spawn_server(Arc::clone(&first_fleet), None);
    let addr = Arc::new(Mutex::new(first_server.local_addr().expect("tcp addr")));

    let waves = args.cycles.div_ceil(args.batch);
    let crash_wave = (waves * 2 / 5).clamp(1, waves - 1);
    // Producers and the main thread meet at four points: opens done,
    // initial checkpoint written, crash wave reached, restart done.
    let barrier = Barrier::new(args.producers + 1);

    let start = Instant::now();
    let (producer_stats, mut reports, restored_fleet, final_server, checkpoints) =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for p in 0..args.producers {
                let args = &args;
                let addr = &addr;
                let barrier = &barrier;
                handles.push(scope.spawn(move || run_producer(p, args, addr, barrier, crash_wave)));
            }

            barrier.wait(); // opens done
            first_server
                .checkpoint_to(&ckpt_path)
                .expect("initial checkpoint");
            let ckpt_loop = start_checkpoints(&first_server, ckpt_path.clone(), ckpt_every);
            barrier.wait(); // release producers

            barrier.wait(); // crash point
            let checkpoints = 1 + ckpt_loop.finish();
            first_server.kill(); // abrupt: post-checkpoint progress is lost
            let bytes = std::fs::read(&ckpt_path).expect("checkpoint file");
            let (restored, session_seed) =
                restore_server(catalog(), fleet_config(args.shards, runtime), &bytes)
                    .expect("checkpoint restores");
            let restored = Arc::new(Mutex::new(restored));
            let new_server = spawn_server(Arc::clone(&restored), Some(session_seed));
            *addr.lock().expect("addr lock") = new_server.local_addr().expect("tcp addr");
            let ckpt_tail = start_checkpoints(&new_server, ckpt_path.clone(), ckpt_every);
            barrier.wait(); // producers reconnect, resume, and replay

            let mut stats = Vec::new();
            let mut reports = Vec::new();
            for h in handles {
                let (s, r) = h.join().expect("producer thread");
                stats.push(s);
                reports.extend(r);
            }
            ckpt_tail.finish();
            (stats, reports, restored, new_server, checkpoints)
        });
    let wall_s = start.elapsed().as_secs_f64();
    let ingest = final_server.shutdown();

    // Byte-identity against the undisturbed oracle, per synth seed.
    let oracle = oracle_reports(&args, runtime);
    reports.sort_by_key(|(seed, _)| *seed);
    assert_eq!(reports.len(), args.streams);
    let mut mismatches = 0;
    for (seed, json) in &reports {
        if oracle[*seed] != *json {
            eprintln!("stream {seed}: report diverged from the oracle");
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "chaos run must be byte-identical to oracle");

    // Conservation: the restored fleet is the fleet of record, and it
    // must have checked every cycle exactly once despite the cuts, the
    // crash, and the replays.
    let fleet = restored_fleet.lock().expect("fleet lock");
    let stats = fleet.stats();
    assert_eq!(
        stats.cycles,
        (args.streams * args.cycles) as u64,
        "every cycle checked exactly once across the crash"
    );
    assert_eq!(stats.bad_cycles, 0, "replay preserved per-stream order");
    assert_eq!(stats.stale_batches, 0, "no batch outlived its stream");
    assert_eq!(stats.closed_streams, args.streams as u64);
    assert!(
        ingest.resumes >= args.producers as u64,
        "every producer resumed at least once after the crash"
    );

    let reconnects: u64 = producer_stats.iter().map(|s| s.reconnects).sum();
    let replayed_frames: u64 = producer_stats.iter().map(|s| s.replayed_frames).sum();
    let report = Report {
        benchmark: "chaos_soak",
        regenerate: "cargo run --release -p adassure-bench --bin chaos_soak",
        transport: "loopback-tcp+chaos",
        producers: args.producers,
        streams: args.streams,
        shards: args.shards,
        workers: runtime.workers(),
        cycles_per_stream: args.cycles,
        cycles: stats.cycles,
        samples: stats.samples,
        violations: stats.violations,
        wall_s,
        samples_per_sec: stats.samples as f64 / wall_s,
        cycles_per_sec: stats.cycles as f64 / wall_s,
        reconnects,
        replayed_frames,
        checkpoints_before_crash: checkpoints,
        server_crashes: 1,
        oracle_byte_identical: true,
    };
    drop(fleet);

    let per_producer = args.streams / args.producers;
    println!(
        "soak   : {} producers x {} streams x {} cycles, crash at wave {}/{} in {:.2} s",
        report.producers,
        per_producer,
        report.cycles_per_stream,
        crash_wave + 1,
        waves,
        report.wall_s
    );
    println!(
        "chaos  : {} reconnects, {} frames replayed, {} checkpoints before the crash",
        report.reconnects, report.replayed_frames, report.checkpoints_before_crash
    );
    println!(
        "ingest : {:.0} samples/sec, {:.0} cycles/sec — byte-identical to the oracle",
        report.samples_per_sec, report.cycles_per_sec
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, json + "\n").unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {}", args.out);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
