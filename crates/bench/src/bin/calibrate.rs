//! Calibration probe: mines the clean-run envelope of every assertion
//! across all scenarios × controllers × seeds and compares it with the
//! hand-tuned defaults. Any default below the global envelope is a false-
//! positive risk. Development tool, not a paper table.

use std::collections::BTreeMap;

use adassure_control::ControllerKind;
use adassure_core::catalog::{self, CatalogConfig};
use adassure_core::mining::{mine_bounds, MiningConfig};
use adassure_exp::campaign::{catalog_config_for, execute};
use adassure_exp::{par, AttackSet, Grid};
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let mining = MiningConfig {
        margin: 1.0,
        floor: 0.0,
    };
    // Every clean cell of the full grid, each mined independently in
    // parallel; the envelopes merge below (max is order-independent).
    let cells = Grid::new()
        .scenarios(ScenarioKind::ALL)
        .controllers(ControllerKind::ALL)
        .attacks(AttackSet::None)
        .include_clean(true)
        .seeds([1, 2, 3])
        .cells();
    let mined: Vec<BTreeMap<String, f64>> = par::map(&cells, |spec| {
        let scenario = Scenario::of_kind(spec.scenario).expect("library scenario");
        let (out, _) = execute(spec, &[]).expect("clean run");
        let bounds = mine_bounds(&catalog_config_for(&scenario), &[&out.trace], &mining);
        bounds
            .into_iter()
            // `observed` is the raw worst case in the assertion's binding
            // direction.
            .map(|(id, b)| (id, b.observed.abs()))
            .collect()
    });

    let mut global: BTreeMap<String, f64> = BTreeMap::new();
    for bounds in mined {
        for (id, magnitude) in bounds {
            let slot = global.entry(id).or_insert(f64::NEG_INFINITY);
            if magnitude > *slot {
                *slot = magnitude;
            }
        }
    }
    let defaults = catalog::build(&CatalogConfig::default().with_goal_distance(1.0));
    println!(
        "{:<5} {:>14} {:>14} {:>8}",
        "id", "clean envelope", "default", "ok?"
    );
    let mut ids: Vec<_> = global.keys().cloned().collect();
    ids.sort_by_key(|id| id[1..].parse::<u32>().unwrap_or(u32::MAX));
    for id in ids {
        let env = global[&id];
        let default = defaults
            .iter()
            .find(|a| a.id.as_str() == id)
            .map(|a| a.condition.threshold().abs());
        let ok = default.map(|d| d > env);
        println!(
            "{id:<5} {env:>14.3} {:>14} {:>8}",
            default.map(|d| format!("{d:.3}")).unwrap_or_default(),
            match ok {
                Some(true) => "ok",
                Some(false) => "TIGHT",
                None => "?",
            }
        );
    }
}
