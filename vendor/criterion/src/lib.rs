//! Offline vendored stand-in for `criterion`.
//!
//! Provides the benchmarking API subset this workspace uses
//! ([`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] / [`criterion_main!`])
//! with a deliberately simple measurement loop: one calibration pass sizes
//! the sample so each benchmark takes on the order of tens of milliseconds,
//! then the mean per-iteration time is printed. No statistics, plots, or
//! baseline comparison.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Target wall-clock budget for one benchmark's measurement pass.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Re-export matching `criterion::black_box` (std's hint).
pub use std::hint::black_box;

/// How batched inputs are grouped between setup calls (accepted for API
/// compatibility; the measurement loop treats all sizes alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every single iteration.
    PerIteration,
}

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            let per_iter = bencher.total.as_nanos() / u128::from(bencher.iters);
            println!("{id}: {per_iter} ns/iter ({} iters)", bencher.iters);
        } else {
            println!("{id}: no iterations recorded");
        }
        self
    }
}

/// Times a closure over a calibrated number of iterations.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` directly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibration pass: size the sample from one timed call.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / one.as_nanos()).clamp(10, 100_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Measures `routine` over inputs produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / one.as_nanos()).clamp(10, 10_000) as u64;

        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = iters;
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_iterations() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
