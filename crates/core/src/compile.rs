//! Compilation of assertions into an interned, allocation-free evaluation
//! plan.
//!
//! The tree-walking evaluator in [`crate::expr`] is the semantic reference:
//! easy to read, easy to test, and exactly what the paper describes. This
//! module lowers the same catalog into the form the online checker actually
//! executes per cycle:
//!
//! * [`SignalTable`] interns every [`SignalId`] into a dense `u32` slot, so
//!   the environment stores signal state in a flat `Vec` instead of a
//!   `HashMap` keyed by reference-counted strings;
//! * [`CompiledExpr`] flattens a [`SignalExpr`] tree into a postfix op
//!   array with pre-resolved slots, evaluated by a small non-recursive
//!   stack loop against a caller-provided scratch buffer;
//! * [`SlotMask`] bitmasks record which slots each assertion reads, so
//!   `end_cycle` can skip assertions none of whose inputs changed.
//!
//! Compiled evaluation is bit-identical to tree-walking evaluation — the
//! differential property test in `tests/proptests.rs` pins this.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use adassure_trace::{well_known, SignalId};

use crate::assertion::{Condition, Eval};
use crate::expr::{wrap_angle, Env, SignalExpr};

/// Number of canonical signal names (the direct-indexed fast path of
/// [`SignalTable`]).
const WELL_KNOWN_COUNT: usize = well_known::ALL.len();

/// Sentinel for "this well-known name has no slot yet".
const NO_SLOT: u32 = u32::MAX;

/// A minimal Fx-style hasher (the FNV-like multiply–xor scheme used by
/// rustc's `FxHashMap`) for the dynamic-name fallback map. Vendoring-free
/// and a good fit for short signal-name keys; the hot path never reaches a
/// hash at all because canonical names resolve through a direct index.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

/// Seed constant from the Firefox/rustc Fx hash.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Interns [`SignalId`]s into dense `u32` slots.
///
/// Canonical ([`well_known`]) names resolve through a direct array lookup
/// on their table index; dynamic names fall back to an [`FxHasher`] map.
/// Slots are assigned in first-sight order and never reused, so a slot is
/// a stable identity for the lifetime of the table.
#[derive(Debug, Clone)]
pub struct SignalTable {
    ids: Vec<SignalId>,
    wk_slots: [u32; WELL_KNOWN_COUNT],
    by_name: HashMap<SignalId, u32, FxBuildHasher>,
}

impl Default for SignalTable {
    fn default() -> Self {
        SignalTable {
            ids: Vec::new(),
            wk_slots: [NO_SLOT; WELL_KNOWN_COUNT],
            by_name: HashMap::default(),
        }
    }
}

impl SignalTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SignalTable::default()
    }

    /// Interns `signal`, assigning a fresh slot on first sight.
    #[inline]
    pub fn intern(&mut self, signal: &SignalId) -> u32 {
        if let Some(i) = signal.well_known_index() {
            let slot = self.wk_slots[i];
            if slot != NO_SLOT {
                return slot;
            }
        }
        self.intern_slow(signal)
    }

    #[cold]
    fn intern_slow(&mut self, signal: &SignalId) -> u32 {
        if let Some(&slot) = self.by_name.get(signal) {
            return slot;
        }
        let slot = u32::try_from(self.ids.len()).expect("more than u32::MAX distinct signals");
        self.ids.push(signal.clone());
        self.by_name.insert(signal.clone(), slot);
        if let Some(i) = signal.well_known_index() {
            self.wk_slots[i] = slot;
        }
        slot
    }

    /// The slot of `signal`, if already interned.
    #[inline]
    pub fn slot(&self, signal: &SignalId) -> Option<u32> {
        match signal.well_known_index() {
            Some(i) => {
                let slot = self.wk_slots[i];
                (slot != NO_SLOT).then_some(slot)
            }
            None => self.by_name.get(signal).copied(),
        }
    }

    /// The id interned at `slot`.
    pub fn id(&self, slot: u32) -> Option<&SignalId> {
        self.ids.get(slot as usize)
    }

    /// Number of interned signals.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no signal has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// A bitmask over signal slots.
///
/// Used both per-assertion ("which slots does this condition read") and
/// per-cycle ("which slots were updated this cycle"); their intersection
/// decides whether an assertion needs re-evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMask {
    words: Box<[u64]>,
}

impl SlotMask {
    /// An empty mask covering at least `slots` slots.
    pub fn with_capacity(slots: usize) -> Self {
        SlotMask {
            words: vec![0; slots.div_ceil(64).max(1)].into_boxed_slice(),
        }
    }

    /// Sets the bit for `slot`. Slots beyond the mask's capacity are
    /// ignored (callers size masks from the table at compile time; signals
    /// first seen later cannot be catalog inputs).
    #[inline]
    pub fn set(&mut self, slot: u32) {
        let word = (slot / 64) as usize;
        if let Some(w) = self.words.get_mut(word) {
            *w |= 1u64 << (slot % 64);
        }
    }

    /// Whether the bit for `slot` is set.
    pub fn contains(&self, slot: u32) -> bool {
        let word = (slot / 64) as usize;
        self.words
            .get(word)
            .is_some_and(|w| w & (1u64 << (slot % 64)) != 0)
    }

    /// Whether any bit is set in both masks.
    #[inline]
    pub fn intersects(&self, other: &SlotMask) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Clears every bit.
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether no bit is set.
    pub fn is_clear(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates the set slot indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            (0..64u32)
                .filter(move |bit| word & (1u64 << bit) != 0)
                .map(move |bit| u32::try_from(i * 64).expect("slot fits u32") + bit)
        })
    }
}

/// One postfix instruction of a [`CompiledExpr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push the newest value of the signal in this slot.
    Signal(u32),
    /// Push a constant.
    Const(f64),
    /// Push the finite-difference derivative of the signal in this slot.
    Derivative(u32),
    /// Push the angle-aware derivative of the signal in this slot.
    AngularDerivative(u32),
    /// Replace the top of stack with its absolute value.
    Abs,
    /// Negate the top of stack.
    Neg,
    /// Replace the top of stack with its tangent.
    Tan,
    /// Pop two, push their sum.
    Add,
    /// Pop two, push their difference.
    Sub,
    /// Pop two, push their product.
    Mul,
    /// Pop two, push their wrapped angular difference.
    AngleDiff,
}

/// A [`SignalExpr`] flattened into postfix form with pre-resolved slots.
///
/// Evaluation is a non-recursive loop over the op array against a
/// caller-provided scratch stack; once the stack has been grown to
/// [`CompiledExpr::max_stack`] it never reallocates.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledExpr {
    ops: Box<[Op]>,
    max_stack: usize,
}

impl CompiledExpr {
    /// Compiles `expr`, interning its signals into `env`'s table.
    pub fn compile(expr: &SignalExpr, env: &mut Env) -> Self {
        let mut ops = Vec::new();
        flatten(expr, env, &mut ops);
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        for op in &ops {
            match op {
                Op::Signal(_) | Op::Const(_) | Op::Derivative(_) | Op::AngularDerivative(_) => {
                    depth += 1;
                    max_stack = max_stack.max(depth);
                }
                Op::Abs | Op::Neg | Op::Tan => {}
                Op::Add | Op::Sub | Op::Mul | Op::AngleDiff => depth -= 1,
            }
        }
        debug_assert_eq!(depth, 1, "postfix program must leave one value");
        CompiledExpr {
            ops: ops.into_boxed_slice(),
            max_stack,
        }
    }

    /// Deepest the evaluation stack can get; size the scratch buffer to
    /// this to make [`CompiledExpr::eval`] allocation-free.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// The compiled program.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Evaluates against `env` using `stack` as scratch space.
    ///
    /// Returns `None` exactly when the tree-walking
    /// [`SignalExpr::eval`] would: some referenced signal is unseen (or,
    /// for derivatives, updated fewer than twice).
    #[inline]
    pub fn eval(&self, env: &Env, stack: &mut Vec<f64>) -> Option<f64> {
        stack.clear();
        if stack.capacity() < self.max_stack {
            stack.reserve(self.max_stack - stack.capacity());
        }
        for op in self.ops.iter() {
            match *op {
                Op::Signal(slot) => stack.push(env.value_at(slot)?),
                Op::Const(v) => stack.push(v),
                Op::Derivative(slot) => stack.push(env.derivative_at(slot)?),
                Op::AngularDerivative(slot) => stack.push(env.angular_derivative_at(slot)?),
                Op::Abs => {
                    let top = stack.last_mut()?;
                    *top = top.abs();
                }
                Op::Neg => {
                    let top = stack.last_mut()?;
                    *top = -*top;
                }
                Op::Tan => {
                    let top = stack.last_mut()?;
                    *top = top.tan();
                }
                Op::Add => {
                    let b = stack.pop()?;
                    let a = stack.last_mut()?;
                    *a += b;
                }
                Op::Sub => {
                    let b = stack.pop()?;
                    let a = stack.last_mut()?;
                    *a -= b;
                }
                Op::Mul => {
                    let b = stack.pop()?;
                    let a = stack.last_mut()?;
                    *a *= b;
                }
                Op::AngleDiff => {
                    let b = stack.pop()?;
                    let a = stack.last_mut()?;
                    *a = wrap_angle(*a - b);
                }
            }
        }
        stack.pop()
    }

    /// Marks every slot the program reads in `mask`.
    pub fn mark_inputs(&self, mask: &mut SlotMask) {
        for op in self.ops.iter() {
            match *op {
                Op::Signal(slot) | Op::Derivative(slot) | Op::AngularDerivative(slot) => {
                    mask.set(slot);
                }
                _ => {}
            }
        }
    }
}

fn flatten(expr: &SignalExpr, env: &mut Env, ops: &mut Vec<Op>) {
    match expr {
        SignalExpr::Signal(id) => ops.push(Op::Signal(env.resolve(id))),
        SignalExpr::Const(v) => ops.push(Op::Const(*v)),
        SignalExpr::Derivative(id) => ops.push(Op::Derivative(env.resolve(id))),
        SignalExpr::AngularDerivative(id) => ops.push(Op::AngularDerivative(env.resolve(id))),
        SignalExpr::Abs(e) => {
            flatten(e, env, ops);
            ops.push(Op::Abs);
        }
        SignalExpr::Neg(e) => {
            flatten(e, env, ops);
            ops.push(Op::Neg);
        }
        SignalExpr::Tan(e) => {
            flatten(e, env, ops);
            ops.push(Op::Tan);
        }
        SignalExpr::Add(a, b) => {
            flatten(a, env, ops);
            flatten(b, env, ops);
            ops.push(Op::Add);
        }
        SignalExpr::Sub(a, b) => {
            flatten(a, env, ops);
            flatten(b, env, ops);
            ops.push(Op::Sub);
        }
        SignalExpr::Mul(a, b) => {
            flatten(a, env, ops);
            flatten(b, env, ops);
            ops.push(Op::Mul);
        }
        SignalExpr::AngleDiff(a, b) => {
            flatten(a, env, ops);
            flatten(b, env, ops);
            ops.push(Op::AngleDiff);
        }
    }
}

/// A [`Condition`] lowered against an environment's signal table.
#[derive(Debug, Clone)]
pub enum CompiledCondition {
    /// `expr <= limit`.
    AtMost {
        /// Compiled expression.
        expr: CompiledExpr,
        /// Upper bound.
        limit: f64,
    },
    /// `expr >= limit`.
    AtLeast {
        /// Compiled expression.
        expr: CompiledExpr,
        /// Lower bound.
        limit: f64,
    },
    /// The signal in `slot` updated within the last `max_age` seconds.
    Fresh {
        /// Monitored slot.
        slot: u32,
        /// Maximum tolerated staleness (s).
        max_age: f64,
    },
}

impl CompiledCondition {
    /// Compiles `condition`, interning its signals into `env`'s table.
    pub fn compile(condition: &Condition, env: &mut Env) -> Self {
        match condition {
            Condition::AtMost { expr, limit } => CompiledCondition::AtMost {
                expr: CompiledExpr::compile(expr, env),
                limit: *limit,
            },
            Condition::AtLeast { expr, limit } => CompiledCondition::AtLeast {
                expr: CompiledExpr::compile(expr, env),
                limit: *limit,
            },
            Condition::Fresh { signal, max_age } => CompiledCondition::Fresh {
                slot: env.resolve(signal),
                max_age: *max_age,
            },
        }
    }

    /// Evaluates against `env`; semantics match [`Condition::eval`] exactly.
    #[inline]
    pub fn eval(&self, env: &Env, stack: &mut Vec<f64>) -> Eval {
        match self {
            CompiledCondition::AtMost { expr, limit } => match expr.eval(env, stack) {
                Some(v) if v <= *limit => Eval::Healthy,
                Some(v) => Eval::Violated(v),
                None => Eval::Unknown,
            },
            CompiledCondition::AtLeast { expr, limit } => match expr.eval(env, stack) {
                Some(v) if v >= *limit => Eval::Healthy,
                Some(v) => Eval::Violated(v),
                None => Eval::Unknown,
            },
            CompiledCondition::Fresh { slot, max_age } => match env.age_at(*slot) {
                Some(age) if age <= *max_age => Eval::Healthy,
                Some(age) => Eval::Violated(age),
                None => Eval::Unknown,
            },
        }
    }

    /// Whether the verdict can change with the clock alone (no input
    /// update). `Fresh` ages as time passes; everything else is a pure
    /// function of stored signal state.
    pub fn time_dependent(&self) -> bool {
        matches!(self, CompiledCondition::Fresh { .. })
    }

    /// Marks every slot the condition reads in `mask`.
    pub fn mark_inputs(&self, mask: &mut SlotMask) {
        match self {
            CompiledCondition::AtMost { expr, .. } | CompiledCondition::AtLeast { expr, .. } => {
                expr.mark_inputs(mask);
            }
            CompiledCondition::Fresh { slot, .. } => mask.set(*slot),
        }
    }

    /// Deepest evaluation stack the condition needs.
    pub fn max_stack(&self) -> usize {
        match self {
            CompiledCondition::AtMost { expr, .. } | CompiledCondition::AtLeast { expr, .. } => {
                expr.max_stack()
            }
            CompiledCondition::Fresh { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn env_with(pairs: &[(&str, f64)]) -> Env {
        let mut env = Env::new();
        env.set_time(0.0);
        for (name, v) in pairs {
            env.update(&SignalId::new(name), *v);
        }
        env
    }

    fn eval_both(expr: &SignalExpr, env: &mut Env) -> (Option<f64>, Option<f64>) {
        let tree = expr.eval(env);
        let compiled = CompiledExpr::compile(expr, env);
        let mut stack = Vec::new();
        (tree, compiled.eval(env, &mut stack))
    }

    #[test]
    fn interning_assigns_dense_slots_in_first_sight_order() {
        let mut table = SignalTable::new();
        let a = SignalId::new("gnss_x");
        let b = SignalId::new("custom_signal");
        assert_eq!(table.intern(&a), 0);
        assert_eq!(table.intern(&b), 1);
        assert_eq!(table.intern(&a), 0, "stable on re-intern");
        assert_eq!(table.slot(&b), Some(1));
        assert_eq!(table.slot(&SignalId::new("unseen")), None);
        assert_eq!(table.id(0), Some(&a));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn well_known_and_dynamic_paths_agree() {
        let mut table = SignalTable::new();
        for name in well_known::ALL {
            table.intern(&SignalId::new(name));
        }
        table.intern(&SignalId::new("extra"));
        assert_eq!(table.len(), well_known::ALL.len() + 1);
        for (i, name) in well_known::ALL.iter().enumerate() {
            let slot = table.slot(&SignalId::new(name)).unwrap();
            assert_eq!(slot as usize, i, "{name}");
        }
    }

    #[test]
    fn slot_mask_set_intersect_clear() {
        let mut inputs = SlotMask::with_capacity(100);
        inputs.set(3);
        inputs.set(70);
        let mut dirty = SlotMask::with_capacity(100);
        assert!(!inputs.intersects(&dirty));
        dirty.set(70);
        assert!(inputs.intersects(&dirty));
        assert!(inputs.contains(3) && inputs.contains(70) && !inputs.contains(4));
        dirty.clear();
        assert!(dirty.is_clear());
        // Out-of-capacity sets are ignored, not panics.
        dirty.set(100_000);
        assert!(dirty.is_clear());
    }

    #[test]
    fn slot_mask_iter_yields_set_slots_in_order() {
        let mut mask = SlotMask::with_capacity(130);
        for slot in [5, 0, 64, 129] {
            mask.set(slot);
        }
        assert_eq!(mask.iter().collect::<Vec<_>>(), vec![0, 5, 64, 129]);
        assert_eq!(SlotMask::with_capacity(10).iter().count(), 0);
    }

    #[test]
    fn compiled_matches_tree_walk_on_arithmetic() {
        let mut env = env_with(&[("a", 3.0), ("b", -2.0)]);
        for expr in [
            SignalExpr::signal("a").add(SignalExpr::signal("b")),
            SignalExpr::signal("a").mul(SignalExpr::constant(2.0)),
            SignalExpr::signal("b").abs(),
            SignalExpr::signal("a").neg(),
            SignalExpr::signal("a").sub(SignalExpr::signal("b")).tan(),
            SignalExpr::signal("a").angle_diff(SignalExpr::signal("b")),
        ] {
            let (tree, compiled) = eval_both(&expr, &mut env);
            assert_eq!(tree, compiled, "{expr}");
        }
    }

    #[test]
    fn compiled_matches_tree_walk_on_missing_signals() {
        let mut env = env_with(&[("a", 1.0)]);
        let expr = SignalExpr::signal("a").sub(SignalExpr::signal("zzz"));
        let (tree, compiled) = eval_both(&expr, &mut env);
        assert_eq!(tree, None);
        assert_eq!(compiled, None);
    }

    #[test]
    fn compiled_matches_tree_walk_on_derivatives() {
        let id = SignalId::new("x");
        let mut env = Env::new();
        env.set_time(0.0);
        env.update(&id, 1.0);
        let expr = SignalExpr::derivative("x");
        let (tree, compiled) = eval_both(&expr, &mut env);
        assert_eq!(tree, None, "one update: no derivative");
        assert_eq!(compiled, None);
        env.set_time(0.1);
        env.update(&id, 2.0);
        let (tree, compiled) = eval_both(&expr, &mut env);
        assert_eq!(tree, compiled);
        assert!((compiled.unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn max_stack_bounds_evaluation_depth() {
        // ((a + b) * (a - b)) needs two live values twice: depth 2... but
        // the right operand evaluates while the left result is parked, so 3.
        let expr = SignalExpr::signal("a")
            .add(SignalExpr::signal("b"))
            .mul(SignalExpr::signal("a").sub(SignalExpr::signal("b")));
        let mut env = env_with(&[("a", 3.0), ("b", 2.0)]);
        let compiled = CompiledExpr::compile(&expr, &mut env);
        assert_eq!(compiled.max_stack(), 3);
        let mut stack = Vec::with_capacity(compiled.max_stack());
        assert_eq!(compiled.eval(&env, &mut stack), Some(5.0));
        assert!(stack.capacity() >= 3 && stack.is_empty());
    }

    #[test]
    fn compiled_condition_matches_condition_eval() {
        let mut env = env_with(&[("x", 3.0)]);
        let cond = Condition::AtMost {
            expr: SignalExpr::signal("x").abs(),
            limit: 2.0,
        };
        let compiled = CompiledCondition::compile(&cond, &mut env);
        let mut stack = Vec::new();
        assert_eq!(compiled.eval(&env, &mut stack), cond.eval(&env));
        assert_eq!(compiled.eval(&env, &mut stack), Eval::Violated(3.0));
        assert!(!compiled.time_dependent());

        let fresh = Condition::Fresh {
            signal: SignalId::new("x"),
            max_age: 0.5,
        };
        let compiled = CompiledCondition::compile(&fresh, &mut env);
        assert!(compiled.time_dependent());
        assert_eq!(compiled.eval(&env, &mut stack), fresh.eval(&env));
    }

    #[test]
    fn input_masks_cover_expression_slots() {
        let mut env = Env::new();
        let cond = Condition::AtMost {
            expr: SignalExpr::signal("a").sub(SignalExpr::derivative("b")),
            limit: 1.0,
        };
        let compiled = CompiledCondition::compile(&cond, &mut env);
        let mut mask = SlotMask::with_capacity(env.table().len());
        compiled.mark_inputs(&mut mask);
        let a = env.table().slot(&SignalId::new("a")).unwrap();
        let b = env.table().slot(&SignalId::new("b")).unwrap();
        assert!(mask.contains(a) && mask.contains(b));
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let build = FxBuildHasher::default();
        let h1 = build.hash_one("gnss_x");
        let h2 = build.hash_one("gnss_x");
        let h3 = build.hash_one("gnss_y");
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }
}
