//! Assertion mining: derive thresholds from attack-free golden runs.
//!
//! For each catalog assertion, the monitored expression is replayed over a
//! set of golden traces (with exactly the online monitor's sample-and-hold
//! semantics, via [`crate::checker::replay`]); the observed worst case,
//! widened by a safety margin, becomes the mined threshold. Thresholds
//! mined this way are guaranteed clean on the training runs and — as
//! experiment F4 shows — detect attacks about as well as the hand-tuned
//! defaults.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use adassure_trace::Trace;

use crate::assertion::{Assertion, Condition};
use crate::catalog::{self, CatalogConfig, Thresholds};
use crate::checker;

/// Mining parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiningConfig {
    /// Multiplicative widening applied to the observed worst case
    /// (1.3 = 30 % headroom).
    pub margin: f64,
    /// Lower bound on any mined `AtMost`/`Fresh` threshold, protecting
    /// against degenerate golden data (e.g. an expression that is constant
    /// zero on the training runs).
    pub floor: f64,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            margin: 1.3,
            floor: 1e-3,
        }
    }
}

/// The observed worst case of one assertion over the golden runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinedBound {
    /// Worst observed value of the monitored expression.
    pub observed: f64,
    /// The threshold derived from it.
    pub mined: f64,
    /// Number of samples that informed the bound.
    pub samples: usize,
}

/// Mines per-assertion bounds from golden traces.
///
/// Returns a map from assertion id (e.g. `"A6"`) to its mined bound.
/// Assertions whose expressions never became evaluable on the golden data
/// (missing signals) are absent from the map. [`crate::assertion::Temporal::Eventually`]
/// assertions (A12) are not minable and are skipped.
pub fn mine_bounds(
    config: &CatalogConfig,
    golden: &[&Trace],
    mining: &MiningConfig,
) -> HashMap<String, MinedBound> {
    let catalog = catalog::build(config);
    let mut acc: HashMap<String, (f64, usize)> = HashMap::new();

    for trace in golden {
        checker::replay(trace, |t, env| {
            for assertion in &catalog {
                if t < assertion.grace
                    || assertion.temporal == crate::assertion::Temporal::Eventually
                {
                    continue;
                }
                let observed = match &assertion.condition {
                    Condition::AtMost { expr, .. } => expr.eval(env),
                    // For AtLeast the binding direction is "how low does it
                    // go"; store the negated value so one max-accumulator
                    // serves both directions.
                    Condition::AtLeast { expr, .. } => expr.eval(env).map(|v| -v),
                    Condition::Fresh { signal, .. } => env.age(signal),
                };
                if let Some(v) = observed {
                    let slot = acc
                        .entry(assertion.id.as_str().to_owned())
                        .or_insert((f64::NEG_INFINITY, 0));
                    slot.0 = slot.0.max(v);
                    slot.1 += 1;
                }
            }
        });
    }

    acc.into_iter()
        .map(|(id, (worst, samples))| {
            let assertion = catalog
                .iter()
                .find(|a| a.id.as_str() == id)
                .expect("accumulated ids come from the catalog");
            let mined = match &assertion.condition {
                Condition::AtMost { .. } | Condition::Fresh { .. } => {
                    (worst * mining.margin).max(mining.floor)
                }
                // Undo the negation: observed minimum is -worst; widen downward.
                Condition::AtLeast { .. } => {
                    let min = -worst;
                    min - (mining.margin - 1.0) * min.abs() - mining.floor
                }
            };
            let observed = match &assertion.condition {
                Condition::AtLeast { .. } => -worst,
                _ => worst,
            };
            (
                id,
                MinedBound {
                    observed,
                    mined,
                    samples,
                },
            )
        })
        .collect()
}

/// Mines a full [`Thresholds`] set: fields with mined evidence are replaced,
/// the rest keep the values from `config.thresholds`.
pub fn mine_thresholds(
    config: &CatalogConfig,
    golden: &[&Trace],
    mining: &MiningConfig,
) -> Thresholds {
    let bounds = mine_bounds(config, golden, mining);
    let mut t = config.thresholds;
    let get = |id: &str| bounds.get(id).map(|b| b.mined);
    if let Some(v) = get("A1") {
        t.a1_max_xtrack = v;
    }
    if let Some(v) = get("A2") {
        t.a2_max_heading_err = v;
    }
    if let Some(v) = get("A3") {
        t.a3_max_speed_err = v;
    }
    if let Some(v) = get("A4") {
        t.a4_max_steer_cmd = v;
    }
    if let Some(v) = get("A5") {
        t.a5_max_steer_rate = v;
    }
    if let Some(v) = get("A6") {
        t.a6_max_speed_gap = v;
    }
    if let Some(v) = get("A7") {
        t.a7_max_gnss_jump = v;
    }
    if let Some(v) = get("A8") {
        t.a8_max_yaw_residual = v;
    }
    if let Some(v) = get("A9") {
        t.a9_min_progress_rate = v;
    }
    if let Some(v) = get("A10") {
        t.a10_max_lat_accel = v;
    }
    if let Some(v) = get("A11") {
        t.a11_max_innovation = v;
    }
    if let Some(v) = get("A13") {
        t.a13_gnss_max_age = v;
    }
    if let Some(v) = get("A14") {
        t.a14_max_compass_rate_gap = v;
    }
    if let Some(v) = get("A15") {
        t.a15_max_accel_residual = v;
    }
    if let Some(v) = get("A16") {
        t.a16_max_wheel_jitter = v;
    }
    t
}

/// Convenience: build a catalog whose thresholds were mined from `golden`.
pub fn mined_catalog(
    config: &CatalogConfig,
    golden: &[&Trace],
    mining: &MiningConfig,
) -> Vec<Assertion> {
    let thresholds = mine_thresholds(config, golden, mining);
    catalog::build(&CatalogConfig {
        thresholds,
        ..*config
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adassure_trace::well_known as sig;

    /// A synthetic golden trace with plausible clean-run magnitudes.
    fn golden_trace(scale: f64) -> Trace {
        let mut trace = Trace::new();
        for i in 0..2000 {
            let t = f64::from(i) * 0.01;
            let wave = (t * 2.0).sin();
            trace.record(sig::XTRACK_ERR, t, 0.2 * scale * wave);
            trace.record(sig::HEADING_ERR, t, 0.05 * scale * wave);
            trace.record(sig::EST_SPEED, t, 8.0 + 0.3 * wave);
            trace.record(sig::TARGET_SPEED, t, 8.0);
            trace.record(sig::STEER_CMD, t, 0.03 * wave);
            trace.record(sig::WHEEL_SPEED, t, 8.0 + 0.2 * wave);
            trace.record(sig::IMU_YAW_RATE, t, 0.01 * wave);
            trace.record(sig::STEER_ACTUAL, t, 0.03 * wave);
            trace.record(sig::COMPASS_HEADING, t, 0.01 * wave);
            trace.record(sig::PROGRESS, t, 8.0 * t);
            trace.record(sig::INNOVATION, t, 0.3 + 0.1 * wave);
            if i % 10 == 0 {
                trace.record(sig::GNSS_X, t, 8.0 * t);
                trace.record(sig::GNSS_Y, t, 0.0);
                if i > 0 {
                    trace.record(sig::GNSS_JUMP, t, 0.8);
                    trace.record(sig::GNSS_SPEED, t, 8.0 + 0.1 * wave);
                }
            }
        }
        trace
    }

    #[test]
    fn mined_bounds_cover_observations_with_margin() {
        let trace = golden_trace(1.0);
        let bounds = mine_bounds(
            &CatalogConfig::default(),
            &[&trace],
            &MiningConfig::default(),
        );
        let a1 = &bounds["A1"];
        assert!(a1.observed <= 0.2 + 1e-9);
        assert!((a1.mined - a1.observed * 1.3).abs() < 1e-9);
        assert!(a1.samples > 1000);
    }

    #[test]
    fn mined_catalog_is_clean_on_training_data() {
        let trace = golden_trace(1.0);
        let catalog = mined_catalog(
            &CatalogConfig::default(),
            &[&trace],
            &MiningConfig::default(),
        );
        let report = checker::check(&catalog, &trace);
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn mined_catalog_fires_on_larger_excursions() {
        let train = golden_trace(1.0);
        let test = golden_trace(12.0); // 12x the training envelope
        let catalog = mined_catalog(
            &CatalogConfig::default(),
            &[&train],
            &MiningConfig::default(),
        );
        let report = checker::check(&catalog, &test);
        assert!(
            report.violations_of("A1").count() > 0,
            "{}",
            report.summary()
        );
    }

    #[test]
    fn multiple_golden_runs_take_the_envelope() {
        let small = golden_trace(0.5);
        let large = golden_trace(2.0);
        let both = mine_bounds(
            &CatalogConfig::default(),
            &[&small, &large],
            &MiningConfig::default(),
        );
        let only_small = mine_bounds(
            &CatalogConfig::default(),
            &[&small],
            &MiningConfig::default(),
        );
        assert!(both["A1"].mined > only_small["A1"].mined);
    }

    #[test]
    fn at_least_bounds_widen_downward() {
        let trace = golden_trace(1.0);
        let bounds = mine_bounds(
            &CatalogConfig::default(),
            &[&trace],
            &MiningConfig::default(),
        );
        let a9 = &bounds["A9"];
        // Progress rate is ~8 m/s on the golden run; the mined lower bound
        // must sit below the observed minimum.
        assert!(a9.mined < a9.observed);
    }

    #[test]
    fn floor_protects_degenerate_data() {
        let mut trace = Trace::new();
        for i in 0..200 {
            // Past the behavioural grace period so A1 accumulates samples.
            let t = 10.0 + f64::from(i) * 0.01;
            trace.record(sig::XTRACK_ERR, t, 0.0); // constant zero
        }
        let bounds = mine_bounds(
            &CatalogConfig::default(),
            &[&trace],
            &MiningConfig::default(),
        );
        assert!(bounds["A1"].mined >= 1e-3);
    }

    #[test]
    fn thresholds_keep_defaults_without_evidence() {
        let mut trace = Trace::new();
        trace.record(sig::XTRACK_ERR, 10.0, 0.1);
        let t = mine_thresholds(
            &CatalogConfig::default(),
            &[&trace],
            &MiningConfig::default(),
        );
        // A6 never became evaluable → default survives.
        assert_eq!(t.a6_max_speed_gap, Thresholds::default().a6_max_speed_gap);
    }
}
