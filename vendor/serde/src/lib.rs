//! Offline vendored stand-in for `serde`.
//!
//! The workspace builds hermetically (no crates.io access), so this crate
//! reimplements the serde API subset the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits with serde-shaped [`Serializer`] /
//! [`Deserializer`] bounds (manual impls written against real serde compile
//! unchanged), plus the `derive` feature re-exporting the companion
//! `serde_derive` proc-macros.
//!
//! The deserialization side is deliberately simplified: instead of serde's
//! visitor machinery, a [`Deserializer`] yields a parsed
//! [`de::Content`] tree and `Deserialize` impls pattern-match on it. The
//! derive macros generate code against exactly this model.

#![warn(missing_docs)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
