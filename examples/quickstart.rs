//! Quickstart: debug one GNSS-spoofed run with ADAssure.
//!
//! Run with: `cargo run --example quickstart`

use adassure::attacks::{campaign::AttackSpec, AttackKind, Window};
use adassure::control::ControllerKind;
use adassure::core::{catalog, checker, diagnosis};
use adassure::scenarios::{run, Scenario, ScenarioKind};
use adassure::sim::geometry::Vec2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A standard workload: the S-curve scenario with the Pure Pursuit stack.
    let scenario = Scenario::of_kind(ScenarioKind::SCurve)?;
    let controller = ControllerKind::PurePursuit;
    let seed = 42;

    // The ADAssure catalog, aware of the route length so A12 (goal
    // eventually reached) is armed.
    let cfg = catalog::CatalogConfig::default().with_goal_distance(scenario.route_length());
    let cat = catalog::build(&cfg);
    println!("catalog: {} assertions", cat.len());

    // --- Golden run: no attack, the catalog stays silent. --------------
    let golden = run::clean(&scenario, controller, seed)?;
    let report = checker::check(&cat, &golden.trace);
    println!(
        "golden run:  reached_goal={} violations={}",
        golden.reached_goal,
        report.violations.len()
    );
    assert!(report.is_clean());

    // --- Attacked run: GNSS position spoofed by 2.5 m from t = 12 s. ----
    let attack = AttackSpec::new(
        AttackKind::GnssBias {
            offset: Vec2::new(2.5, -2.0),
        },
        Window::from_start(scenario.attack_start),
    );
    let mut injector = attack.injector(seed);
    let attacked = run::with_tap(&scenario, controller, seed, &mut injector)?;
    let report = checker::check(&cat, &attacked.trace);

    println!("\nattacked run ({}):", attack.name());
    print!("{}", report.summary());

    if let Some(latency) = report.detection_latency(attack.window.start) {
        println!("detected {latency:.2} s after attack onset");
    }

    // --- Diagnosis: which channel is the liar? --------------------------
    let verdict = diagnosis::diagnose(&report);
    println!("\nranked root causes:");
    for c in &verdict.ranking {
        println!("  {:<12} {:.0} %", c.cause.name(), c.score * 100.0);
    }
    assert_eq!(
        verdict.top(),
        Some(diagnosis::CauseTag::GnssChannel),
        "the GNSS channel should top the ranking"
    );
    println!(
        "\nverdict: debug the {} channel first",
        verdict
            .top()
            .ok_or("diagnosis produced no candidates")?
            .name()
    );
    Ok(())
}
