//! Deterministic parallel execution over grid cells.
//!
//! Work is distributed by an atomic cursor over the cell list and every
//! result is keyed by its cell index, so the merged output is bit-identical
//! to a serial run regardless of worker count or scheduling. The worker
//! count defaults to the machine's available parallelism and can be
//! overridden with the `ADASSURE_THREADS` environment variable.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count (values `>= 1`;
/// anything else falls back to the default).
pub const THREADS_ENV: &str = "ADASSURE_THREADS";

/// The number of workers a campaign will use: `ADASSURE_THREADS` when set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on `thread_count()` scoped workers, returning
/// results in item order.
///
/// `f` must be a pure function of its item (plus shared read-only state) for
/// the determinism guarantee to mean anything; every experiment run is
/// seeded per cell, so this holds throughout the workspace.
///
/// # Panics
///
/// Propagates a panic from `f` (the first panicking worker's payload).
pub fn map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    map_with_threads(items, thread_count(), f)
}

/// [`map`] with an explicit worker count (used by the determinism tests).
pub fn map_with_threads<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else {
                            break;
                        };
                        produced.push((index, f(item)));
                    }
                    produced
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(produced) => {
                    for (index, value) in produced {
                        slots[index] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("cursor visits every cell exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = map_with_threads(&items, threads, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with_threads(&empty, 8, |&x| x).is_empty());
        assert_eq!(map_with_threads(&[5u32], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn oversubscription_matches_serial() {
        let items: Vec<u64> = (0..13).collect();
        let serial = map_with_threads(&items, 1, |&x| x.wrapping_mul(0x9E37_79B9));
        let wide = map_with_threads(&items, 64, |&x| x.wrapping_mul(0x9E37_79B9));
        assert_eq!(serial, wide);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            map_with_threads(&[1u32, 2, 3], 2, |&x| {
                assert_ne!(x, 2, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
