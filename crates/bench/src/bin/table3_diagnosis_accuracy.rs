//! **T3 — Root-cause diagnosis accuracy.**
//!
//! For every attack class: how often the diagnosis engine ranks the truly
//! attacked channel first (top-1) or within the first two candidates
//! (top-2), across 2 scenarios × 2 controllers × 3 seeds.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin table3_diagnosis_accuracy`

use adassure_control::ControllerKind;
use adassure_exp::agg::{percent, top_k_hits};
use adassure_exp::record::cause_of;
use adassure_exp::{AttackSet, Campaign, Grid, RunRecord};
use adassure_scenarios::ScenarioKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds = [1u64, 2, 3];
    let grid = Grid::new()
        .scenarios([ScenarioKind::Straight, ScenarioKind::SCurve])
        .controllers([ControllerKind::PurePursuit, ControllerKind::Stanley])
        .attacks(AttackSet::Standard)
        .seeds(seeds);
    let per_cell = 2 * 2 * seeds.len();
    let report = Campaign::new("t3_diagnosis_accuracy", grid)
        .run()
        .map_err(|e| format!("t3 campaign: {e}"))?;

    println!("T3: diagnosis accuracy per attack (over {per_cell} runs each)");
    println!("scenarios: straight + s_curve; controllers: pure_pursuit + stanley\n");
    println!(
        "{:<20} {:<12} {:>10} {:>10} {:>10}",
        "attack", "true cause", "detected", "top-1", "top-2"
    );

    let mut grand = (0usize, 0usize, 0usize, 0usize);
    for attack in AttackSet::Standard.specs(0.0) {
        let truth = cause_of(attack.kind.channel());
        // Diagnosis accuracy is scored over the *detected* runs only.
        let detected: Vec<&RunRecord> =
            report.select(|r| r.attack.as_deref() == Some(attack.name()) && r.detected);
        let (top1, _) = top_k_hits(detected.iter().copied(), 1);
        let (top2, _) = top_k_hits(detected.iter().copied(), 2);
        println!(
            "{:<20} {:<12} {:>7}/{:<2} {:>9} {:>10}",
            attack.name(),
            truth.name(),
            detected.len(),
            per_cell,
            percent(top1, detected.len()),
            percent(top2, detected.len()),
        );
        grand.0 += detected.len();
        grand.1 += top1;
        grand.2 += top2;
        grand.3 += per_cell;
    }
    println!(
        "\noverall: detected {}/{} runs; top-1 {}, top-2 {} of detected runs",
        grand.0,
        grand.3,
        percent(grand.1, grand.0),
        percent(grand.2, grand.0)
    );

    let path = report
        .write_json("results")
        .map_err(|e| format!("write results json: {e}"))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
