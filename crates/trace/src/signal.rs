use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Identifier of a recorded signal.
///
/// Internally reference-counted so that cloning an id (which happens on every
/// recorded sample routed through a [`crate::Trace`]) is a pointer copy, not
/// a string allocation.
///
/// # Example
///
/// ```
/// use adassure_trace::SignalId;
///
/// let a = SignalId::new("xtrack_err");
/// let b = a.clone();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "xtrack_err");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(Arc<str>);

impl SignalId {
    /// Creates a signal id from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        SignalId(Arc::from(name.as_ref()))
    }

    /// Returns the signal name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SignalId {
    fn from(name: &str) -> Self {
        SignalId::new(name)
    }
}

impl From<String> for SignalId {
    fn from(name: String) -> Self {
        SignalId::new(name)
    }
}

impl AsRef<str> for SignalId {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for SignalId {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl Serialize for SignalId {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for SignalId {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(SignalId::new(s))
    }
}

/// Canonical signal names used across the ADAssure workspace.
///
/// The simulator, controllers and assertion catalog all agree on these names
/// so that assertions written against the catalog bind to the signals the
/// engine records without any per-experiment wiring.
pub mod well_known {
    /// Ground-truth x position of the vehicle (m).
    pub const TRUE_X: &str = "true_x";
    /// Ground-truth y position of the vehicle (m).
    pub const TRUE_Y: &str = "true_y";
    /// Ground-truth heading (rad, wrapped to (-pi, pi]).
    pub const TRUE_HEADING: &str = "true_heading";
    /// Ground-truth forward speed (m/s).
    pub const TRUE_SPEED: &str = "true_speed";
    /// Ground-truth yaw rate (rad/s).
    pub const TRUE_YAW_RATE: &str = "true_yaw_rate";

    /// GNSS-reported x position (m), after any attack.
    pub const GNSS_X: &str = "gnss_x";
    /// GNSS-reported y position (m), after any attack.
    pub const GNSS_Y: &str = "gnss_y";
    /// Speed derived from consecutive GNSS fixes (m/s).
    pub const GNSS_SPEED: &str = "gnss_speed";
    /// Magnitude of the per-cycle GNSS position increment (m).
    pub const GNSS_JUMP: &str = "gnss_jump";
    /// Wheel-odometry speed (m/s), after any attack.
    pub const WHEEL_SPEED: &str = "wheel_speed";
    /// Wheel-odometry acceleration derived over a ~0.5 s baseline (m/s²).
    pub const WHEEL_ACCEL: &str = "wheel_accel";
    /// Exponentially-weighted mean of the per-cycle wheel-speed change
    /// magnitude (m/s) — a dispersion measure that catches zero-mean noise
    /// injection, which debounced level assertions are blind to.
    pub const WHEEL_JITTER: &str = "wheel_jitter";
    /// IMU yaw rate (rad/s), after any attack.
    pub const IMU_YAW_RATE: &str = "imu_yaw_rate";
    /// IMU longitudinal acceleration (m/s^2), after any attack.
    pub const IMU_ACCEL: &str = "imu_accel";
    /// Compass / heading sensor reading (rad), after any attack.
    pub const COMPASS_HEADING: &str = "compass_heading";

    /// Estimated x position from the state estimator (m).
    pub const EST_X: &str = "est_x";
    /// Estimated y position from the state estimator (m).
    pub const EST_Y: &str = "est_y";
    /// Estimated heading (rad).
    pub const EST_HEADING: &str = "est_heading";
    /// Estimated speed (m/s).
    pub const EST_SPEED: &str = "est_speed";
    /// Estimator innovation: gap between GNSS fix and dead-reckoned pose (m).
    pub const INNOVATION: &str = "innovation";

    /// Signed cross-track error of the *estimated* pose to the path (m).
    pub const XTRACK_ERR: &str = "xtrack_err";
    /// Signed cross-track error of the *ground-truth* pose to the path (m).
    pub const TRUE_XTRACK_ERR: &str = "true_xtrack_err";
    /// Heading error to the path tangent (rad).
    pub const HEADING_ERR: &str = "heading_err";
    /// Target speed requested by the scenario profile (m/s).
    pub const TARGET_SPEED: &str = "target_speed";
    /// Arc-length progress along the path (m), from the estimated pose.
    pub const PROGRESS: &str = "progress";
    /// Arc-length progress along the path (m), from the ground-truth pose.
    pub const TRUE_PROGRESS: &str = "true_progress";

    /// Steering command issued by the lateral controller (rad).
    pub const STEER_CMD: &str = "steer_cmd";
    /// Longitudinal acceleration command (m/s^2, negative = braking).
    pub const ACCEL_CMD: &str = "accel_cmd";
    /// Actual (post-actuator) steering angle (rad).
    pub const STEER_ACTUAL: &str = "steer_actual";
    /// Lateral acceleration implied by the current motion (m/s^2).
    pub const LAT_ACCEL: &str = "lat_accel";

    /// All canonical names, in a stable order (useful for CSV headers).
    pub const ALL: &[&str] = &[
        TRUE_X,
        TRUE_Y,
        TRUE_HEADING,
        TRUE_SPEED,
        TRUE_YAW_RATE,
        GNSS_X,
        GNSS_Y,
        GNSS_SPEED,
        GNSS_JUMP,
        WHEEL_SPEED,
        WHEEL_ACCEL,
        WHEEL_JITTER,
        IMU_YAW_RATE,
        IMU_ACCEL,
        COMPASS_HEADING,
        EST_X,
        EST_Y,
        EST_HEADING,
        EST_SPEED,
        INNOVATION,
        XTRACK_ERR,
        TRUE_XTRACK_ERR,
        HEADING_ERR,
        TARGET_SPEED,
        PROGRESS,
        TRUE_PROGRESS,
        STEER_CMD,
        ACCEL_CMD,
        STEER_ACTUAL,
        LAT_ACCEL,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_compare_by_content() {
        assert_eq!(SignalId::new("a"), SignalId::from("a"));
        assert_ne!(SignalId::new("a"), SignalId::new("b"));
    }

    #[test]
    fn id_orders_lexicographically() {
        assert!(SignalId::new("a") < SignalId::new("b"));
    }

    #[test]
    fn borrow_allows_str_lookup_in_sets() {
        let mut set = HashSet::new();
        set.insert(SignalId::new("speed"));
        assert!(set.contains("speed"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SignalId::new("xtrack_err").to_string(), "xtrack_err");
    }

    #[test]
    fn well_known_names_are_unique() {
        let set: HashSet<_> = well_known::ALL.iter().collect();
        assert_eq!(set.len(), well_known::ALL.len());
    }

    #[test]
    fn serde_round_trip() {
        let id = SignalId::new("gnss_x");
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "\"gnss_x\"");
        let back: SignalId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
