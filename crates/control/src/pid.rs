//! Longitudinal PID speed controller with anti-windup.

use serde::{Deserialize, Serialize};

/// PID gains and output limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Lower output bound (m/s², braking).
    pub min_output: f64,
    /// Upper output bound (m/s², accelerating).
    pub max_output: f64,
    /// Clamp on the integral term's contribution (anti-windup).
    pub integral_limit: f64,
}

impl PidConfig {
    /// Defaults for speed control of the workspace passenger car.
    pub fn speed_control() -> Self {
        PidConfig {
            kp: 1.2,
            ki: 0.3,
            kd: 0.02,
            min_output: -6.0,
            max_output: 4.0,
            integral_limit: 2.0,
        }
    }
}

impl Default for PidConfig {
    fn default() -> Self {
        PidConfig::speed_control()
    }
}

/// A discrete PID controller.
///
/// # Example
///
/// ```
/// use adassure_control::pid::{Pid, PidConfig};
///
/// let mut pid = Pid::new(PidConfig::speed_control());
/// // Vehicle at 5 m/s, target 10 m/s → accelerate.
/// assert!(pid.update(10.0, 5.0, 0.01) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with zeroed internal state.
    pub fn new(config: PidConfig) -> Self {
        Pid {
            config,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Computes the control output for the current cycle.
    pub fn update(&mut self, target: f64, measured: f64, dt: f64) -> f64 {
        let error = target - measured;
        self.integral = (self.integral + error * dt).clamp(
            -self.config.integral_limit / self.config.ki.abs().max(1e-9),
            self.config.integral_limit / self.config.ki.abs().max(1e-9),
        );
        let derivative = match self.last_error {
            Some(prev) if dt > 0.0 => (error - prev) / dt,
            _ => 0.0,
        };
        self.last_error = Some(error);
        let raw =
            self.config.kp * error + self.config.ki * self.integral + self.config.kd * derivative;
        raw.clamp(self.config.min_output, self.config.max_output)
    }

    /// Clears the integrator and derivative history.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// Captures the controller's mutable state.
    pub fn state(&self) -> PidState {
        PidState {
            integral: self.integral,
            last_error: self.last_error,
        }
    }

    /// Reinstates a state captured with [`Pid::state`].
    pub fn restore(&mut self, s: &PidState) {
        self.integral = s.integral;
        self.last_error = s.last_error;
    }
}

/// Plain-data snapshot of a [`Pid`]'s mutable state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidState {
    /// Accumulated (clamped) error integral.
    pub integral: f64,
    /// Previous cycle's error, if any.
    pub last_error: Option<f64>,
}

impl Default for Pid {
    fn default() -> Self {
        Pid::new(PidConfig::speed_control())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_response_signs() {
        let mut pid = Pid::default();
        assert!(pid.update(10.0, 5.0, 0.01) > 0.0);
        pid.reset();
        assert!(pid.update(5.0, 10.0, 0.01) < 0.0);
    }

    #[test]
    fn output_saturates() {
        let mut pid = Pid::default();
        assert_eq!(pid.update(1000.0, 0.0, 0.01), 4.0);
        pid.reset();
        assert_eq!(pid.update(0.0, 1000.0, 0.01), -6.0);
    }

    #[test]
    fn integral_removes_steady_state_error() {
        // Plant: v' = u with disturbance -0.5 m/s² (drag). P-only control
        // would leave a steady-state error; PI must converge to the target.
        let mut pid = Pid::default();
        let mut v = 0.0;
        for _ in 0..20_000 {
            let u = pid.update(10.0, v, 0.01);
            v += (u - 0.5) * 0.01;
        }
        assert!((v - 10.0).abs() < 0.05, "steady state {v}");
    }

    #[test]
    fn anti_windup_bounds_integral() {
        let mut pid = Pid::default();
        // Saturate for a long time.
        for _ in 0..100_000 {
            pid.update(1000.0, 0.0, 0.01);
        }
        // After the setpoint collapses the output must leave saturation
        // quickly (bounded integral), not stay pinned for thousands of steps.
        let mut cycles_pinned = 0;
        let mut v = 0.0;
        loop {
            let u = pid.update(0.0, v, 0.01);
            if u >= 4.0 - 1e-9 {
                cycles_pinned += 1;
                v += u * 0.01;
            } else {
                break;
            }
            assert!(cycles_pinned < 2_000, "integral wind-up detected");
        }
    }

    #[test]
    fn derivative_damps_fast_error_changes() {
        let mut config = PidConfig::speed_control();
        config.kd = 1.0;
        config.ki = 0.0;
        let mut pid = Pid::new(config);
        pid.update(10.0, 0.0, 0.01);
        // Error suddenly shrinks → derivative term is negative, reducing output.
        let out = pid.update(10.0, 9.0, 0.01);
        let p_only = config.kp * 1.0;
        assert!(out < p_only, "{out} vs {p_only}");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::default();
        for _ in 0..100 {
            pid.update(10.0, 0.0, 0.01);
        }
        pid.reset();
        let fresh = Pid::default().update(10.0, 5.0, 0.01);
        assert_eq!(pid.update(10.0, 5.0, 0.01), fresh);
    }
}
