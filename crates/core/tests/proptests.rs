//! Property-based tests of the assertion engine's invariants.

use std::collections::BTreeSet;

use adassure_core::assertion::{Assertion, Condition, Eval, Severity, Temporal};
use adassure_core::catalog::{CatalogConfig, Thresholds};
use adassure_core::expr::Env;
use adassure_core::mining::{mine_bounds, MiningConfig};
use adassure_core::violation::Violation;
use adassure_core::{checker, lane, HealthConfig, OnlineChecker, SignalExpr};
use adassure_trace::{ColumnarTrace, SignalId, Trace};
use proptest::prelude::*;

/// The tree-walking temporal monitor the online checker implemented before
/// catalog compilation, kept as the differential oracle: it evaluates
/// [`Condition::eval`] against the by-name [`Env`] every cycle, with no
/// interning, no bytecode and no dirty-skipping. Extended with the same
/// telemetry-health semantics as the compiled checker (poisoned inputs,
/// staleness horizon, quarantine and hysteretic recovery), expressed over
/// signal names instead of slots.
struct ReferenceChecker {
    env: Env,
    health_config: HealthConfig,
    poisoned: BTreeSet<SignalId>,
    monitors: Vec<ReferenceMonitor>,
    violations: Vec<Violation>,
    cycles: u64,
}

struct ReferenceMonitor {
    assertion: Assertion,
    inputs: BTreeSet<SignalId>,
    staleness_exempt: bool,
    health_active: bool,
    degraded_streak: u32,
    clean_streak: u32,
    episode_start: Option<f64>,
    alarmed_this_episode: bool,
    ever_healthy: bool,
    saw_first_sample: bool,
    open_violation: Option<usize>,
}

impl ReferenceChecker {
    fn new(catalog: impl IntoIterator<Item = Assertion>) -> Self {
        ReferenceChecker::with_health(catalog, HealthConfig::default())
    }

    fn with_health(
        catalog: impl IntoIterator<Item = Assertion>,
        health_config: HealthConfig,
    ) -> Self {
        ReferenceChecker {
            env: Env::new(),
            health_config,
            poisoned: BTreeSet::new(),
            monitors: catalog
                .into_iter()
                .map(|assertion| ReferenceMonitor {
                    inputs: assertion.signals().into_iter().collect(),
                    staleness_exempt: matches!(assertion.condition, Condition::Fresh { .. }),
                    health_active: true,
                    degraded_streak: 0,
                    clean_streak: 0,
                    assertion,
                    episode_start: None,
                    alarmed_this_episode: false,
                    ever_healthy: false,
                    saw_first_sample: false,
                    open_violation: None,
                })
                .collect(),
            violations: Vec::new(),
            cycles: 0,
        }
    }

    fn begin_cycle(&mut self, t: f64) {
        self.env.set_time(t);
    }

    fn update(&mut self, signal: &SignalId, value: f64) {
        if value.is_finite() {
            self.env.update(signal, value);
            self.poisoned.remove(signal);
        } else {
            self.poisoned.insert(signal.clone());
        }
    }

    fn end_cycle(&mut self) -> usize {
        let t = self.env.now();
        let before = self.violations.len();
        for monitor in &mut self.monitors {
            if t < monitor.assertion.grace {
                continue;
            }
            let missing = monitor
                .inputs
                .iter()
                .filter(|sig| {
                    self.poisoned.contains(*sig)
                        || (!monitor.staleness_exempt
                            && self
                                .env
                                .age(sig)
                                .is_some_and(|age| age > self.health_config.stale_after))
                })
                .count();
            let eval = if missing > 0 {
                monitor.clean_streak = 0;
                monitor.degraded_streak = monitor.degraded_streak.saturating_add(1);
                monitor.health_active = false;
                Eval::Inconclusive
            } else {
                monitor.degraded_streak = 0;
                if !monitor.health_active {
                    monitor.clean_streak = monitor.clean_streak.saturating_add(1);
                    if monitor.clean_streak >= self.health_config.recover_after {
                        monitor.health_active = true;
                        monitor.clean_streak = 0;
                    }
                }
                if monitor.health_active {
                    monitor.assertion.condition.eval(&self.env)
                } else {
                    Eval::Inconclusive
                }
            };
            match eval {
                Eval::Unknown | Eval::Inconclusive => {
                    monitor.episode_start = None;
                    monitor.alarmed_this_episode = false;
                    monitor.open_violation = None;
                }
                Eval::Healthy => {
                    if let Some(idx) = monitor.open_violation.take() {
                        self.violations[idx].recovered = Some(t);
                    }
                    monitor.episode_start = None;
                    monitor.alarmed_this_episode = false;
                    monitor.ever_healthy = true;
                    monitor.saw_first_sample = true;
                }
                Eval::Violated(value) => {
                    monitor.saw_first_sample = true;
                    let onset = *monitor.episode_start.get_or_insert(t);
                    let should_alarm = match monitor.assertion.temporal {
                        Temporal::Immediate => !monitor.alarmed_this_episode,
                        Temporal::Sustained(d) => !monitor.alarmed_this_episode && t - onset >= d,
                        Temporal::Eventually => false,
                    };
                    if should_alarm {
                        monitor.alarmed_this_episode = true;
                        monitor.open_violation = Some(self.violations.len());
                        self.violations.push(Violation {
                            assertion: monitor.assertion.id.clone(),
                            severity: monitor.assertion.severity,
                            onset,
                            detected: t,
                            value,
                            cycle: self.cycles,
                            recovered: None,
                        });
                    }
                }
            }
        }
        self.cycles += 1;
        self.violations.len() - before
    }

    fn finish(mut self, end_time: f64) -> Vec<Violation> {
        for monitor in &mut self.monitors {
            if monitor.assertion.temporal == Temporal::Eventually
                && monitor.saw_first_sample
                && !monitor.ever_healthy
            {
                self.violations.push(Violation {
                    assertion: monitor.assertion.id.clone(),
                    severity: monitor.assertion.severity,
                    onset: monitor.assertion.grace,
                    detected: end_time,
                    value: f64::NAN,
                    cycle: self.cycles,
                    recovered: None,
                });
            }
        }
        self.violations
    }
}

/// Bitwise comparison of violation lists: both evaluators run the same
/// floating-point operations in the same order, so even NaN payloads (the
/// `Eventually` finish marker) must match bit for bit.
fn assert_same_violations(compiled: &[Violation], reference: &[Violation]) {
    assert_eq!(compiled.len(), reference.len(), "violation counts differ");
    for (c, r) in compiled.iter().zip(reference) {
        assert_eq!(c.assertion, r.assertion);
        assert_eq!(c.severity, r.severity);
        assert_eq!(c.onset.to_bits(), r.onset.to_bits(), "onset differs");
        assert_eq!(
            c.detected.to_bits(),
            r.detected.to_bits(),
            "detected differs"
        );
        assert_eq!(c.value.to_bits(), r.value.to_bits(), "value differs");
        assert_eq!(c.cycle, r.cycle, "cycle index differs");
        assert_eq!(
            c.recovered.map(f64::to_bits),
            r.recovered.map(f64::to_bits),
            "recovery differs"
        );
    }
}

/// Signal alphabet for the differential property: a mix of canonical
/// (interned through the well-known fast path) and dynamic names.
const DIFF_SIGNALS: &[&str] = &["gnss_x", "wheel_speed", "custom_a", "custom_b"];

/// Expression trees over [`DIFF_SIGNALS`] with small constants, so values
/// stay in a range where both evaluators exercise all verdicts.
fn arb_diff_expr() -> impl Strategy<Value = SignalExpr> {
    let signal = 0..DIFF_SIGNALS.len();
    let leaf = prop_oneof![
        signal
            .clone()
            .prop_map(|i| SignalExpr::signal(DIFF_SIGNALS[i])),
        (-10.0f64..10.0).prop_map(SignalExpr::constant),
        signal
            .clone()
            .prop_map(|i| SignalExpr::derivative(DIFF_SIGNALS[i])),
        signal.prop_map(|i| SignalExpr::angular_derivative(DIFF_SIGNALS[i])),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(SignalExpr::abs),
            inner.clone().prop_map(SignalExpr::neg),
            inner.clone().prop_map(SignalExpr::tan),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.angle_diff(b)),
        ]
    })
}

fn arb_diff_condition() -> impl Strategy<Value = Condition> {
    prop_oneof![
        (arb_diff_expr(), -5.0f64..5.0).prop_map(|(expr, limit)| Condition::AtMost { expr, limit }),
        (arb_diff_expr(), -5.0f64..5.0)
            .prop_map(|(expr, limit)| Condition::AtLeast { expr, limit }),
        (0..DIFF_SIGNALS.len(), 0.0f64..0.3).prop_map(|(i, max_age)| Condition::Fresh {
            signal: SignalId::new(DIFF_SIGNALS[i]),
            max_age,
        }),
    ]
}

fn arb_diff_assertion() -> impl Strategy<Value = Assertion> {
    let temporal = prop_oneof![
        Just(Temporal::Immediate),
        (0.0f64..0.1).prop_map(Temporal::Sustained),
        Just(Temporal::Eventually),
    ];
    (arb_diff_condition(), temporal, 0.0f64..0.15).prop_map(|(condition, temporal, grace)| {
        Assertion::new("P1", "differential property", Severity::Warning, condition)
            .with_temporal(temporal)
            .with_grace(grace)
    })
}

/// Random expression trees for the spec-language round-trip property.
fn arb_expr() -> impl Strategy<Value = SignalExpr> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(SignalExpr::signal),
        (-1e3f64..1e3).prop_map(SignalExpr::constant),
        "[a-z][a-z0-9_]{0,8}".prop_map(SignalExpr::derivative),
        "[a-z][a-z0-9_]{0,8}".prop_map(SignalExpr::angular_derivative),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(SignalExpr::abs),
            inner.clone().prop_map(SignalExpr::neg),
            inner.clone().prop_map(SignalExpr::tan),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.angle_diff(b)),
        ]
    })
}

fn bounded_assertion(limit: f64, temporal: Temporal) -> Assertion {
    Assertion::new(
        "P1",
        "property assertion",
        Severity::Warning,
        Condition::AtMost {
            expr: SignalExpr::signal("x").abs(),
            limit,
        },
    )
    .with_temporal(temporal)
}

proptest! {
    #[test]
    fn expressions_obey_algebraic_identities(
        a in -1e6f64..1e6,
        b in -1e6f64..1e6,
    ) {
        let mut env = Env::new();
        env.set_time(0.0);
        env.update(&SignalId::new("a"), a);
        env.update(&SignalId::new("b"), b);

        let abs = SignalExpr::signal("a").abs().eval(&env).unwrap();
        prop_assert!(abs >= 0.0);
        let self_diff = SignalExpr::signal("a")
            .sub(SignalExpr::signal("a"))
            .eval(&env)
            .unwrap();
        prop_assert_eq!(self_diff, 0.0);
        let sum = SignalExpr::signal("a").add(SignalExpr::signal("b")).eval(&env).unwrap();
        prop_assert_eq!(sum, a + b);
        let neg = SignalExpr::signal("a").neg().eval(&env).unwrap();
        prop_assert_eq!(neg, -a);
        let angdiff = SignalExpr::signal("a")
            .angle_diff(SignalExpr::signal("b"))
            .eval(&env)
            .unwrap();
        prop_assert!(angdiff > -std::f64::consts::PI - 1e-9);
        prop_assert!(angdiff <= std::f64::consts::PI + 1e-9);
    }

    #[test]
    fn env_derivative_matches_last_step(
        v0 in -1e3f64..1e3,
        v1 in -1e3f64..1e3,
        dt in 0.001f64..1.0,
    ) {
        let id = SignalId::new("x");
        let mut env = Env::new();
        env.set_time(0.0);
        env.update(&id, v0);
        env.set_time(dt);
        env.update(&id, v1);
        let d = env.derivative(&id).unwrap();
        prop_assert!((d - (v1 - v0) / dt).abs() < 1e-9 * d.abs().max(1.0));
    }

    #[test]
    fn violations_are_well_formed_for_random_signals(
        values in proptest::collection::vec(-10.0f64..10.0, 1..200),
        limit in 0.1f64..5.0,
        sustain in 0.0f64..0.2,
    ) {
        let mut c = OnlineChecker::new([bounded_assertion(limit, Temporal::Sustained(sustain))]);
        for (i, v) in values.iter().enumerate() {
            c.begin_cycle(i as f64 * 0.01).unwrap();
            c.update("x", *v);
            c.end_cycle();
        }
        for v in c.violations() {
            prop_assert!(v.onset <= v.detected + 1e-12);
            prop_assert!(v.detected - v.onset + 1e-9 >= sustain);
            prop_assert!(v.value.abs() > limit);
        }
    }

    #[test]
    fn signals_below_threshold_never_fire(
        values in proptest::collection::vec(-1.0f64..1.0, 1..100),
    ) {
        let mut c = OnlineChecker::new([bounded_assertion(1.5, Temporal::Immediate)]);
        for (i, v) in values.iter().enumerate() {
            c.begin_cycle(i as f64 * 0.01).unwrap();
            c.update("x", *v);
            prop_assert_eq!(c.end_cycle(), 0);
        }
    }

    #[test]
    fn offline_equals_online_for_random_traces(
        values in proptest::collection::vec(-5.0f64..5.0, 1..150),
        limit in 0.5f64..3.0,
    ) {
        let assertion = bounded_assertion(limit, Temporal::Sustained(0.05));
        let mut trace = Trace::new();
        for (i, v) in values.iter().enumerate() {
            trace.record("x", i as f64 * 0.01, *v);
        }
        let offline = checker::check(std::slice::from_ref(&assertion), &trace);

        let mut online = OnlineChecker::new([assertion]);
        for (i, v) in values.iter().enumerate() {
            online.begin_cycle(i as f64 * 0.01).unwrap();
            online.update("x", *v);
            online.end_cycle();
        }
        let online = online.finish(trace.span().unwrap().1);
        prop_assert_eq!(offline, online);
    }

    #[test]
    fn mined_thresholds_cover_their_training_data(
        values in proptest::collection::vec(-3.0f64..3.0, 20..200),
        margin in 1.05f64..2.0,
    ) {
        // Feed an xtrack-like signal past the behavioural grace period.
        let mut trace = Trace::new();
        for (i, v) in values.iter().enumerate() {
            trace.record("xtrack_err", 10.0 + i as f64 * 0.01, *v);
        }
        let config = CatalogConfig {
            thresholds: Thresholds::default(),
            ..CatalogConfig::default()
        };
        let mining = MiningConfig { margin, floor: 1e-6 };
        let bounds = mine_bounds(&config, &[&trace], &mining);
        let a1 = &bounds["A1"];
        let observed_max = values.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        prop_assert!((a1.observed - observed_max).abs() < 1e-9);
        prop_assert!(a1.mined + 1e-12 >= a1.observed, "mined below observation");
    }

    #[test]
    fn spec_language_round_trips_arbitrary_expressions(expr in arb_expr()) {
        use adassure_core::spec::parse_expr;
        let text = expr.to_string();
        let parsed = parse_expr(&text)
            .unwrap_or_else(|e| panic!("failed to parse own Display `{text}`: {e}"));
        // Structural equality, except constants go through decimal printing;
        // compare via Display instead (stable fixed point).
        prop_assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn threshold_scaling_is_linear(
        limit in 0.1f64..100.0,
        factor in 0.1f64..10.0,
    ) {
        let a = bounded_assertion(limit, Temporal::Immediate);
        let scaled = a.with_scaled_threshold(factor);
        prop_assert!((scaled.condition.threshold() - limit * factor).abs() < 1e-9 * limit.max(1.0));
    }

    /// The tentpole differential property: for random catalogs, random
    /// cycle streams and random per-cycle update subsets/orders, the
    /// compiled plan (interned slots, postfix bytecode, dirty-mask
    /// caching) produces bit-identical verdicts and violation timestamps
    /// to the tree-walking reference evaluator.
    #[test]
    fn compiled_plan_matches_tree_walking_reference(
        catalog in proptest::collection::vec(arb_diff_assertion(), 1..5),
        cycles in proptest::collection::vec(
            proptest::collection::vec((0..DIFF_SIGNALS.len(), -3.0f64..3.0), 0..5),
            1..40,
        ),
    ) {
        let mut compiled = OnlineChecker::new(catalog.iter().cloned());
        let mut reference = ReferenceChecker::new(catalog.iter().cloned());
        for (i, cycle) in cycles.iter().enumerate() {
            // An irregular step keeps grace/sustain boundaries off-grid.
            let t = i as f64 * 0.013;
            compiled.begin_cycle(t).unwrap();
            reference.begin_cycle(t);
            for &(signal, value) in cycle {
                let id = SignalId::new(DIFF_SIGNALS[signal]);
                compiled.update(id.clone(), value);
                reference.update(&id, value);
            }
            prop_assert_eq!(compiled.end_cycle(), reference.end_cycle());
        }
        let end_time = cycles.len() as f64 * 0.013;
        let report = compiled.finish(end_time);
        let expected = reference.finish(end_time);
        assert_same_violations(&report.violations, &expected);
    }

    /// Degraded-telemetry differential property: random catalogs driven by
    /// fault-injected streams — dropouts (signals absent for stretches),
    /// NaN/Inf bursts, frozen repeats, duplicate same-cycle samples — never
    /// panic and produce verdicts bit-identical to the tree-walking
    /// reference extended with the same health semantics. Small health
    /// windows make sure quarantine and hysteretic recovery transitions are
    /// actually crossed.
    #[test]
    fn fault_injected_streams_match_reference_health_semantics(
        catalog in proptest::collection::vec(arb_diff_assertion(), 1..5),
        cycles in proptest::collection::vec(
            proptest::collection::vec(
                // The selector turns ~1 in 4 samples non-finite (NaN/±Inf).
                (0..DIFF_SIGNALS.len(), -3.0f64..3.0, 0u8..12).prop_map(|(s, v, sel)| {
                    let v = match sel {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        _ => v,
                    };
                    (s, v)
                }),
                0..5,
            ),
            1..60,
        ),
        stale_after in prop_oneof![
            Just(f64::INFINITY),
            0.02f64..0.2,
        ],
        quarantine_after in 1u32..5,
        recover_after in 1u32..5,
    ) {
        let health = HealthConfig { stale_after, quarantine_after, recover_after };
        let mut compiled = OnlineChecker::with_health(catalog.iter().cloned(), health);
        let mut reference = ReferenceChecker::with_health(catalog.iter().cloned(), health);
        for (i, cycle) in cycles.iter().enumerate() {
            let t = i as f64 * 0.013;
            compiled.begin_cycle(t).unwrap();
            reference.begin_cycle(t);
            for &(signal, value) in cycle {
                let id = SignalId::new(DIFF_SIGNALS[signal]);
                compiled.update(id.clone(), value);
                reference.update(&id, value);
            }
            prop_assert_eq!(compiled.end_cycle(), reference.end_cycle());
        }
        let end_time = cycles.len() as f64 * 0.013;
        let report = compiled.finish(end_time);
        let expected = reference.finish(end_time);
        assert_same_violations(&report.violations, &expected);
    }

    /// Lane-batched differential property: for random catalogs and random
    /// *batches* of sparse traces — each trace its own cycle grid, signals
    /// present or absent per cycle, so every lane sits in a different
    /// unknown/derivative/staleness state — the struct-of-arrays columnar
    /// evaluator produces reports bit-identical to the scalar compiled
    /// replay of each trace, including Inconclusive accounting and
    /// quarantine/recovery health transitions under a finite staleness
    /// horizon.
    #[test]
    fn lane_batched_columnar_matches_scalar_replay(
        catalog in proptest::collection::vec(arb_diff_assertion(), 1..5),
        // A batch wider than one lane group (> 8 traces) so chunking is
        // exercised; per trace, per cycle, each signal is independently
        // present (Some) or absent (None).
        traces in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(
                    prop_oneof![Just(None), (-3.0f64..3.0).prop_map(Some)],
                    DIFF_SIGNALS.len(),
                ),
                0..30,
            ),
            1..12,
        ),
        stale_after in prop_oneof![
            Just(f64::INFINITY),
            0.02f64..0.2,
        ],
        quarantine_after in 1u32..5,
        recover_after in 1u32..5,
    ) {
        let health = HealthConfig { stale_after, quarantine_after, recover_after };
        let traces: Vec<Trace> = traces
            .iter()
            .map(|cycles| {
                let mut trace = Trace::new();
                for (i, cycle) in cycles.iter().enumerate() {
                    let t = i as f64 * 0.013;
                    for (signal, value) in cycle.iter().enumerate() {
                        if let Some(v) = value {
                            trace.record(DIFF_SIGNALS[signal], t, *v);
                        }
                    }
                }
                trace
            })
            .collect();
        let columnar: Vec<ColumnarTrace> = traces.iter().map(ColumnarTrace::from_trace).collect();
        let lane_reports = lane::check_columnar_with_health(&catalog, health, &columnar);
        prop_assert_eq!(lane_reports.len(), traces.len());
        for (trace, lane_report) in traces.iter().zip(&lane_reports) {
            let scalar = checker::check_with_health(&catalog, health, trace);
            assert_same_violations(&lane_report.violations, &scalar.violations);
            prop_assert_eq!(lane_report.end_time.to_bits(), scalar.end_time.to_bits());
            prop_assert_eq!(lane_report.assertions_checked, scalar.assertions_checked);
            prop_assert_eq!(lane_report.inconclusive_cycles, scalar.inconclusive_cycles);
        }
    }
}
