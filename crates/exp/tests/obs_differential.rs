//! Differential guarantee of the observability layer: attaching metrics,
//! event emission and the JSONL log to a campaign must never perturb a
//! single byte of the campaign report.
//!
//! Three configurations of the same seeded campaign slice are compared:
//! observability disabled, events enabled into a `NullSink`, and events
//! enabled with a JSONL file attached. The NullSink and JSONL reports must
//! be bit-identical (`to_json()` string equality); the disabled report
//! must agree on everything except the event counter.

use adassure_control::ControllerKind;
use adassure_exp::campaign::Campaign;
use adassure_exp::grid::{AttackSet, Grid};
use adassure_obs::ObsConfig;
use adassure_scenarios::ScenarioKind;

fn slice() -> Campaign<'static> {
    let grid = Grid::new()
        .scenarios([ScenarioKind::Straight])
        .controllers([ControllerKind::PurePursuit])
        .attacks(AttackSet::Standard)
        .include_clean(true)
        .seeds([1]);
    Campaign::new("obs_differential", grid)
}

#[test]
fn jsonl_sink_and_null_sink_reports_are_bit_identical() {
    let dir = std::env::temp_dir().join("adassure_obs_differential");
    let path = dir.join("events.jsonl");
    let _ = std::fs::remove_file(&path);

    // NullSink leg: events flow through the filter and counters but are
    // dropped on emission.
    let null_report = slice().run_observed(&ObsConfig::enabled()).unwrap();

    // JSONL leg: the same events are retained per cell and written to disk
    // in cell order after the campaign.
    let jsonl_report = slice()
        .run_observed(&ObsConfig::enabled().with_jsonl_path(&path))
        .unwrap();

    assert_eq!(
        null_report.to_json(),
        jsonl_report.to_json(),
        "the JSONL log perturbed the campaign report"
    );
    assert!(
        null_report.obs.events_emitted > 0,
        "no events were exercised"
    );

    // The log itself must exist and hold one line per emitted event.
    let log = std::fs::read_to_string(&path).expect("JSONL log written");
    let lines = log.lines().count();
    assert_eq!(
        lines as u64, jsonl_report.obs.events_emitted,
        "JSONL line count disagrees with the emission counter"
    );
}

#[test]
fn disabled_observability_matches_on_everything_but_the_obs_block() {
    let disabled = slice().run_observed(&ObsConfig::disabled()).unwrap();
    let enabled = slice().run_observed(&ObsConfig::enabled()).unwrap();

    // Verdicts, latencies, diagnoses: identical.
    assert_eq!(disabled.runs, enabled.runs);
    assert_eq!(disabled.summaries, enabled.summaries);
    // The deterministic roll-up agrees on every counter that does not
    // depend on emission.
    assert_eq!(disabled.obs.cycles, enabled.obs.cycles);
    assert_eq!(disabled.obs.assertions, enabled.obs.assertions);
    assert_eq!(
        disabled.obs.health_transitions,
        enabled.obs.health_transitions
    );
    assert_eq!(
        disabled.obs.detection_latency_s,
        enabled.obs.detection_latency_s
    );
    assert_eq!(disabled.obs.events_emitted, 0);
}

#[test]
fn observed_campaigns_are_reproducible() {
    let a = slice().run_observed(&ObsConfig::enabled()).unwrap();
    let b = slice().run_observed(&ObsConfig::enabled()).unwrap();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "campaign report is not deterministic"
    );
}
