//! The shared worker runtime: one pool abstraction serving both the
//! campaign executor and the fleet monitor server.
//!
//! A [`Runtime`] is a lightweight handle naming a worker count. Work is
//! distributed by an atomic cursor over the item list — idle workers
//! "steal" the next unclaimed index, so a slow item never serialises the
//! batch — and every result is keyed by its item index, so the merged
//! output is bit-identical to a serial run regardless of worker count or
//! scheduling.
//!
//! [`Runtime::global`] reads the process-wide worker count (the
//! `ADASSURE_THREADS` override, parsed once — see
//! [`crate::par::thread_count`]); [`Runtime::with_workers`] pins an
//! explicit count, which is how the determinism tests compare serial and
//! parallel executions without touching the process environment.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A worker-pool handle: the worker count every [`Runtime::map`] call on
/// this handle uses.
///
/// Copyable and trivially cheap — the pool's threads are scoped to each
/// `map` invocation (std scoped threads carry no unsafe lifetime
/// extension), so a `Runtime` can be stored in configs and shared freely.
/// Per-invocation spawning amortises over batch-sized work items; callers
/// with per-item work in the microsecond range should batch items before
/// mapping, which is exactly what the campaign engine (lane groups) and
/// the fleet server (sample batches per shard) do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    workers: usize,
}

impl Runtime {
    /// The process-wide runtime: worker count from
    /// [`crate::par::thread_count`] (`ADASSURE_THREADS` override, else
    /// available parallelism).
    pub fn global() -> Self {
        Runtime {
            workers: crate::par::thread_count(),
        }
    }

    /// A runtime with an explicit worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        Runtime {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The number of workers a batch of `items` work items actually
    /// occupies: the configured count, capped by the item count (a pool
    /// never spawns more workers than there are items to claim).
    pub fn effective_workers(&self, items: usize) -> usize {
        self.workers.clamp(1, items.max(1))
    }

    /// Maps `f` over `items` on this runtime's workers, returning results
    /// in item order.
    ///
    /// `f` must be a pure function of its item (plus shared read-only or
    /// interior-mutable state) for the determinism guarantee to mean
    /// anything; every experiment run is seeded per cell and every fleet
    /// shard owns disjoint stream state, so this holds throughout the
    /// workspace.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the first panicking worker's payload).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        let threads = self.effective_workers(items.len());
        if threads <= 1 {
            return items.iter().map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(index) else {
                                break;
                            };
                            produced.push((index, f(item)));
                        }
                        produced
                    })
                })
                .collect();
            for worker in workers {
                match worker.join() {
                    Ok(produced) => {
                        for (index, value) in produced {
                            slots[index] = Some(value);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("cursor visits every item exactly once"))
            .collect()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = Runtime::with_workers(threads).map(&items, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let rt = Runtime::with_workers(8);
        let empty: Vec<u32> = Vec::new();
        assert!(rt.map(&empty, |&x| x).is_empty());
        assert_eq!(rt.map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn oversubscription_matches_serial() {
        let items: Vec<u64> = (0..13).collect();
        let serial = Runtime::with_workers(1).map(&items, |&x| x.wrapping_mul(0x9E37_79B9));
        let wide = Runtime::with_workers(64).map(&items, |&x| x.wrapping_mul(0x9E37_79B9));
        assert_eq!(serial, wide);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Runtime::with_workers(2).map(&[1u32, 2, 3], |&x| {
                assert_ne!(x, 2, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_counts_are_clamped() {
        assert_eq!(Runtime::with_workers(0).workers(), 1);
        assert_eq!(Runtime::with_workers(3).effective_workers(2), 2);
        assert_eq!(Runtime::with_workers(3).effective_workers(0), 1);
        assert_eq!(Runtime::with_workers(3).effective_workers(100), 3);
    }
}
