//! Criterion micro-benchmarks of the simulator substrate: physics stepping,
//! track projection and a full closed-loop second.

use criterion::{criterion_group, criterion_main, Criterion};

use adassure_control::pipeline::{AdStack, StackConfig};
use adassure_control::ControllerKind;
use adassure_scenarios::{Scenario, ScenarioKind};
use adassure_sim::engine::{Engine, SimConfig};
use adassure_sim::track::Track;
use adassure_sim::vehicle::{Controls, VehicleModel, VehicleState};

fn bench_vehicle_step(c: &mut Criterion) {
    let kin = VehicleModel::kinematic();
    let dyn_ = VehicleModel::dynamic();
    let mut state = VehicleState::at([0.0, 0.0], 0.1);
    state.speed = 8.0;
    let controls = Controls::new(0.05, 0.5);

    c.bench_function("vehicle/kinematic_rk4_step", |b| {
        b.iter(|| kin.step(std::hint::black_box(&state), controls, 0.01))
    });
    c.bench_function("vehicle/dynamic_rk4_step", |b| {
        b.iter(|| dyn_.step(std::hint::black_box(&state), controls, 0.01))
    });
}

fn bench_track_projection(c: &mut Criterion) {
    let track = Track::circle([0.0, 0.0], 25.0, 1.0).expect("track");
    let point = [20.0, 12.0];

    c.bench_function("track/project_onto_circle", |b| {
        b.iter(|| std::hint::black_box(&track).project(std::hint::black_box(point)))
    });
}

fn bench_closed_loop_second(c: &mut Criterion) {
    let scenario = Scenario::of_kind(ScenarioKind::Straight).expect("scenario");

    c.bench_function("engine/one_simulated_second_pure_pursuit", |b| {
        b.iter(|| {
            let mut stack = AdStack::new(
                StackConfig::new(ControllerKind::PurePursuit),
                scenario.track.clone(),
            );
            let engine = Engine::new(SimConfig::new(1.0).with_seed(1), scenario.track.clone());
            engine.run(&mut stack).expect("run")
        })
    });
}

criterion_group!(
    benches,
    bench_vehicle_step,
    bench_track_projection,
    bench_closed_loop_second
);
criterion_main!(benches);
