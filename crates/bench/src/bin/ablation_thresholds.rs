//! **AB1 — Threshold-sensitivity ablation**: scale every catalog threshold
//! by a common factor and measure clean false positives vs attack detection
//! — the operating curve the default thresholds sit on.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin ablation_thresholds`

use adassure_control::ControllerKind;
use adassure_core::catalog;
use adassure_exp::campaign::catalog_config_for;
use adassure_exp::{AttackSet, Campaign, Grid};
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve).expect("library scenario");
    let controller = ControllerKind::PurePursuit;
    let base = catalog_config_for(&scenario);
    let seeds = [1u64, 2, 3];

    println!(
        "AB1: catalog-wide threshold scaling (scenario `{}`, {} stack)\n",
        scenario.kind, controller
    );
    println!(
        "{:>8} {:>18} {:>18}",
        "scale", "clean FP runs", "attacks detected"
    );

    // One grid serves every scale: the clean runs lead each block, the
    // standard attacks follow, all over the same seeds.
    let grid = Grid::new()
        .scenarios([scenario.kind])
        .controllers([controller])
        .attacks(AttackSet::Standard)
        .include_clean(true)
        .seeds(seeds);

    for scale in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0] {
        let cat: Vec<_> = catalog::build(&base)
            .iter()
            .map(|a| {
                // A12's threshold is a route fraction, not an error
                // magnitude — scaling it would make the goal unreachable.
                if a.temporal == adassure_core::Temporal::Eventually {
                    a.clone()
                } else {
                    a.with_scaled_threshold(scale)
                }
            })
            .collect();

        let report = Campaign::new("ab1_thresholds", grid.clone())
            .with_catalog(|_| cat.clone())
            .run()
            .expect("campaign");
        let clean_fp = report.select(|r| r.attack.is_none() && r.detected).len();
        let attacked = report.select(|r| r.attack.is_some());
        let total = attacked.len();
        let detected = attacked.iter().filter(|r| r.detected).count();
        println!(
            "{:>7}x {:>15}/{:<2} {:>15}/{:<2}",
            scale,
            clean_fp,
            seeds.len(),
            detected,
            total
        );
    }
    println!("\n(the expected operating curve: tightening below 1x buys little extra");
    println!(" detection but floods the monitor with false positives; loosening");
    println!(" beyond ~2x starts losing the subtler attack classes.)");
}
