//! ADAssure: assertion-based debugging for autonomous-driving control
//! algorithms.
//!
//! This crate is the reproduction of the paper's primary contribution. It
//! turns "the car behaved strangely" into an actionable debugging verdict in
//! four stages:
//!
//! 1. **Specify** — assertions over control-loop signals, built from the
//!    [`expr::SignalExpr`] expression language, [`assertion::Condition`]
//!    bounds and [`assertion::Temporal`] operators. The standard catalog of
//!    sixteen assertions (A1–A16) lives in [`catalog`].
//! 2. **Monitor** — [`online::OnlineChecker`] evaluates the catalog
//!    incrementally, cycle by cycle, with bounded memory; [`checker`]
//!    replays a recorded [`adassure_trace::Trace`] through the same monitor
//!    for offline debugging (identical semantics by construction).
//! 3. **Localise** — violations carry their onset and detection instants
//!    ([`violation::Violation`]), giving detection latency against a known
//!    attack window.
//! 4. **Diagnose** — [`diagnosis`] matches the violation pattern against a
//!    cause–effect matrix and returns a ranked list of candidate root
//!    causes (which sensor channel or loop stage is compromised).
//!
//! Thresholds can be hand-set ([`catalog::Thresholds::default`]) or **mined**
//! from attack-free golden runs ([`mining`]).
//!
//! # Example
//!
//! ```
//! use adassure_core::catalog::{self, CatalogConfig};
//! use adassure_core::checker;
//! use adassure_trace::Trace;
//!
//! // A trace where the cross-track error blows up at t = 10 s (after the
//! // catalog's start-up grace period).
//! let mut trace = Trace::new();
//! for i in 0..1500 {
//!     let t = f64::from(i) * 0.01;
//!     let xtrack = if t < 10.0 { 0.1 } else { 3.0 };
//!     trace.record("xtrack_err", t, xtrack);
//! }
//! let cat = catalog::build(&CatalogConfig::default());
//! let report = checker::check(&cat, &trace);
//! let violation = report.violations.iter().find(|v| v.assertion.as_str() == "A1").unwrap();
//! assert!(violation.onset >= 10.0 && violation.onset < 10.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assertion;
pub mod catalog;
pub mod checker;
pub mod codec;
pub mod compile;
pub mod diagnosis;
pub mod expr;
pub mod lane;
pub mod mining;
pub mod online;
pub mod report;
pub mod spec;
pub mod violation;

pub use assertion::{Assertion, AssertionId, Condition, Eval, Severity, Temporal};
pub use expr::SignalExpr;
pub use lane::{check_columnar, LANES};
pub use online::{
    CheckerPlan, CheckerState, CycleError, HealthConfig, HealthState, MonitorPlan, MonitorSnapshot,
    OnlineChecker, RestoreError, SignalSnapshot,
};
pub use report::{CheckReport, RunContext};
pub use violation::Violation;
