//! Calibration probe: mines the clean-run envelope of every assertion
//! across all scenarios × controllers × seeds and compares it with the
//! hand-tuned defaults. Any default below the global envelope is a false-
//! positive risk. Development tool, not a paper table.

use std::collections::BTreeMap;

use adassure_bench::catalog_config_for;
use adassure_control::ControllerKind;
use adassure_core::catalog::{self, CatalogConfig};
use adassure_core::mining::{mine_bounds, MiningConfig};
use adassure_scenarios::{run, Scenario};

fn main() {
    let mining = MiningConfig {
        margin: 1.0,
        floor: 0.0,
    };
    let mut global: BTreeMap<String, f64> = BTreeMap::new();
    for scenario in Scenario::all() {
        for controller in ControllerKind::ALL {
            for seed in [1u64, 2, 3] {
                let out = run::clean(&scenario, controller, seed).expect("clean run");
                let bounds = mine_bounds(&catalog_config_for(&scenario), &[&out.trace], &mining);
                for (id, b) in bounds {
                    let slot = global.entry(id).or_insert(f64::NEG_INFINITY);
                    // `observed` is the raw worst case in the assertion's
                    // binding direction.
                    let magnitude = b.observed.abs();
                    if magnitude > *slot {
                        *slot = magnitude;
                    }
                }
            }
        }
    }
    let defaults = catalog::build(&CatalogConfig::default().with_goal_distance(1.0));
    println!("{:<5} {:>14} {:>14} {:>8}", "id", "clean envelope", "default", "ok?");
    let mut ids: Vec<_> = global.keys().cloned().collect();
    ids.sort_by_key(|id| id[1..].parse::<u32>().unwrap_or(u32::MAX));
    for id in ids {
        let env = global[&id];
        let default = defaults
            .iter()
            .find(|a| a.id.as_str() == id)
            .map(|a| a.condition.threshold().abs());
        let ok = default.map(|d| d > env);
        println!(
            "{id:<5} {env:>14.3} {:>14} {:>8}",
            default.map(|d| format!("{d:.3}")).unwrap_or_default(),
            match ok {
                Some(true) => "ok",
                Some(false) => "TIGHT",
                None => "?",
            }
        );
    }
}
