//! Campaign execution: the single entry point from a grid cell to a
//! structured record.
//!
//! Every harness — tables, figures and ablations alike — reaches the
//! simulator through [`execute`] (or through [`Campaign::run`], which maps
//! it over a whole grid in parallel), so scenario wiring, catalog choice,
//! checking and record construction are decided in exactly one place.

use adassure_control::pipeline::AdStack;
use adassure_core::catalog::{self, CatalogConfig};
use adassure_core::{checker, lane, Assertion, CheckReport, HealthConfig};
use adassure_obs::{
    Event as ObsEvent, EventSink, JsonlWriter, MetricsSnapshot, NullSink, ObsConfig, VecSink,
};
use adassure_scenarios::{run, Scenario};
use adassure_sim::engine::SimOutput;
use adassure_sim::SimError;
use adassure_trace::ColumnarTrace;

use crate::grid::{Grid, RunSpec};
use crate::record::{CampaignReport, RunRecord};
use crate::runtime::Runtime;

/// Picks an assertion catalog for a scenario. Campaigns default to
/// [`standard_catalog`]; the mining and ablation studies substitute their
/// own (mined, reduced or rescaled) catalogs through
/// [`Campaign::with_catalog`].
pub type CatalogSource<'a> = dyn Fn(&Scenario) -> Vec<Assertion> + Send + Sync + 'a;

/// The catalog configuration matched to a scenario: goal-distance for open
/// routes (enabling A12), defaults otherwise.
pub fn catalog_config_for(scenario: &Scenario) -> CatalogConfig {
    let config = CatalogConfig::default();
    if scenario.track.is_closed() {
        config
    } else {
        config.with_goal_distance(scenario.route_length())
    }
}

/// The standard catalog for a scenario.
pub fn standard_catalog(scenario: &Scenario) -> Vec<Assertion> {
    catalog::build(&catalog_config_for(scenario))
}

/// Executes one grid cell against a catalog: builds the scenario and stack,
/// runs the engine (injecting the cell's attack, if any) and checks the
/// trace.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]); standard scenarios with
/// standard stacks never produce one.
pub fn execute(spec: &RunSpec, cat: &[Assertion]) -> Result<(SimOutput, CheckReport), SimError> {
    execute_observed(spec, cat, &ObsConfig::disabled(), Box::new(NullSink))
        .map(|(output, report, _, _)| (output, report))
}

/// One observed cell: simulation output, check report, the checker's
/// metrics, and the sink handed back (carrying any retained events).
pub type ObservedRun = (
    SimOutput,
    CheckReport,
    MetricsSnapshot,
    Option<Box<dyn EventSink>>,
);

/// [`execute`] with the observability layer attached: the cell is checked
/// through [`checker::check_observed`] with the cell index as the run id,
/// and the checker's metrics plus the (possibly event-laden) sink are
/// returned alongside the simulation output and report.
///
/// Observability never perturbs the verdicts: the `CheckReport` is
/// bit-identical to the one [`execute`] produces for the same cell.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]); standard scenarios with
/// standard stacks never produce one.
pub fn execute_observed(
    spec: &RunSpec,
    cat: &[Assertion],
    obs: &ObsConfig,
    sink: Box<dyn EventSink>,
) -> Result<ObservedRun, SimError> {
    let output = simulate(spec)?;
    let (mut report, metrics, sink) =
        checker::check_observed(cat, &output.trace, spec.index as u64, obs, sink);
    report.context = Some(spec.context());
    Ok((output, report, metrics, sink))
}

/// Runs one grid cell's simulation (scenario, stack, engine, injected
/// attack) without checking the trace. [`execute_observed`] couples it to
/// the scalar checker; the campaign's lane-grouped batch path simulates
/// all cells first and then checks them in lane groups.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]).
pub fn simulate(spec: &RunSpec) -> Result<SimOutput, SimError> {
    let scenario = Scenario::of_kind(spec.scenario)?;
    let config = run::stack_config(&scenario, spec.controller).with_estimator(spec.estimator);
    let mut stack = AdStack::new(config, scenario.track.clone());
    let engine = run::engine_for(&scenario, spec.seed);
    match spec.attack {
        Some(attack) => {
            let mut injector = attack.injector(spec.seed);
            engine.run_with_tap(&mut stack, &mut injector)
        }
        None => engine.run(&mut stack),
    }
}

/// A named grid plus a catalog source: one experiment campaign.
pub struct Campaign<'a> {
    name: String,
    grid: Grid,
    catalog: Box<CatalogSource<'a>>,
    runtime: Runtime,
}

impl std::fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("name", &self.name)
            .field("grid", &self.grid)
            .finish_non_exhaustive()
    }
}

impl<'a> Campaign<'a> {
    /// A campaign over `grid` using the standard per-scenario catalog.
    pub fn new(name: impl Into<String>, grid: Grid) -> Self {
        Campaign {
            name: name.into(),
            grid,
            catalog: Box::new(standard_catalog),
            runtime: Runtime::global(),
        }
    }

    /// Replaces the catalog source (mined, reduced or rescaled catalogs).
    pub fn with_catalog(
        mut self,
        source: impl Fn(&Scenario) -> Vec<Assertion> + Send + Sync + 'a,
    ) -> Self {
        self.catalog = Box::new(source);
        self
    }

    /// Replaces the worker runtime (default: [`Runtime::global`], the
    /// `ADASSURE_THREADS`-steered process pool). The determinism tests use
    /// this to compare serial and parallel executions without mutating the
    /// process environment.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// The campaign's grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Executes every cell of the grid — in parallel, deterministically —
    /// and collects the records in cell order.
    ///
    /// Observability is configured from the environment
    /// ([`ObsConfig::from_env`], the `ADASSURE_OBS` / `ADASSURE_OBS_PATH`
    /// variables), mirroring how `ADASSURE_THREADS` steers the worker
    /// pool. With observability off this is exactly the pre-observability
    /// campaign path; either way the report is byte-identical because the
    /// embedded [`adassure_obs::ObsSummary`] never includes wall-clock
    /// measurements.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in cell order.
    pub fn run(&self) -> Result<CampaignReport, SimError> {
        self.run_observed(&ObsConfig::from_env())
    }

    /// [`run`](Campaign::run) with an explicit observability configuration.
    ///
    /// Per-cell metrics are merged into one campaign-level
    /// [`MetricsSnapshot`] *in cell order*, so the roll-up is independent
    /// of worker count and scheduling. The campaign also records every
    /// cell's detection latency into the snapshot's
    /// `detection_latency_s` histogram. When `obs` carries a JSONL path,
    /// all per-cell events (run id = cell index) are written there in
    /// cell order; JSONL I/O failures are reported on stderr but never
    /// fail the campaign.
    ///
    /// # Errors
    ///
    /// Propagates the first simulator error in cell order.
    pub fn run_observed(&self, obs: &ObsConfig) -> Result<CampaignReport, SimError> {
        let cells = self.grid.cells();
        // Catalogs depend only on the scenario; resolve each kind once up
        // front instead of per cell.
        let mut catalogs: Vec<(adassure_scenarios::ScenarioKind, Vec<Assertion>)> = Vec::new();
        for cell in &cells {
            if !catalogs.iter().any(|(kind, _)| *kind == cell.scenario) {
                let scenario = Scenario::of_kind(cell.scenario)?;
                catalogs.push((cell.scenario, (self.catalog)(&scenario)));
            }
        }
        // With no event stream requested, checking is a pure function of
        // the trace: simulate all cells in parallel, then check them in
        // lane groups on the columnar engine. Verdicts and metrics are
        // bit-identical to the per-cell scalar path (the embedded summary
        // never includes wall-clock timing), so only event emission forces
        // the scalar route.
        if !obs.events {
            return self.run_lane_grouped(&cells, &catalogs);
        }
        // Events are only retained when they have somewhere to go; with no
        // JSONL path a NullSink keeps the filter/counter semantics (and
        // therefore the report bytes) identical while dropping the payload.
        let collect_events = obs.events && obs.jsonl_path.is_some();
        let outcomes = self.runtime.map(&cells, |spec| {
            let cat = &catalogs
                .iter()
                .find(|(kind, _)| *kind == spec.scenario)
                .expect("catalog resolved for every scenario in the grid")
                .1;
            let sink: Box<dyn EventSink> = if collect_events {
                Box::new(VecSink::default())
            } else {
                Box::new(NullSink)
            };
            execute_observed(spec, cat, obs, sink).map(|(output, report, metrics, sink)| {
                let record = RunRecord::from_run(spec, &output, &report);
                let events = sink.map(|mut s| s.take_events()).unwrap_or_default();
                (record, metrics, events)
            })
        });
        let mut merged = MetricsSnapshot::empty();
        let mut events: Vec<ObsEvent> = Vec::new();
        let mut runs: Vec<RunRecord> = Vec::with_capacity(cells.len());
        for outcome in outcomes {
            let (record, metrics, cell_events) = outcome?;
            merged.merge(&metrics);
            if let Some(latency) = record.detection_latency {
                merged.detection_latency_s.record(latency);
            }
            events.extend(cell_events);
            runs.push(record);
        }
        if let Some(path) = &obs.jsonl_path {
            if let Err(err) = write_jsonl(path, &events) {
                eprintln!(
                    "warning: campaign {}: failed to write event log {}: {err}",
                    self.name,
                    path.display()
                );
            }
        }
        Ok(CampaignReport {
            name: self.name.clone(),
            runs,
            summaries: Vec::new(),
            obs: merged.summary(),
        })
    }

    /// The event-free batch path: simulate every cell in parallel, group
    /// the resulting traces into lanes *per catalog* (cells of the same
    /// scenario kind share one compiled plan), check the groups on the
    /// columnar engine across the same worker pool, and merge the
    /// per-cell metrics strictly in cell order.
    fn run_lane_grouped(
        &self,
        cells: &[RunSpec],
        catalogs: &[(adassure_scenarios::ScenarioKind, Vec<Assertion>)],
    ) -> Result<CampaignReport, SimError> {
        let outputs = self.runtime.map(cells, simulate);
        let mut sim_outputs: Vec<SimOutput> = Vec::with_capacity(cells.len());
        for output in outputs {
            sim_outputs.push(output?);
        }

        // Lane groups: for each catalog (in first-appearance order), the
        // cells using it in ascending cell order, chunked by lane width.
        // Results are scattered back by cell index, so grouping order
        // never leaks into the report.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (cat_idx, (kind, _)) in catalogs.iter().enumerate() {
            let indices: Vec<usize> = (0..cells.len())
                .filter(|&i| cells[i].scenario == *kind)
                .collect();
            for chunk in indices.chunks(lane::LANES) {
                groups.push((cat_idx, chunk.to_vec()));
            }
        }
        let checked: Vec<Vec<(CheckReport, MetricsSnapshot)>> =
            self.runtime.map(&groups, |(cat_idx, indices)| {
                let columnar: Vec<ColumnarTrace> = indices
                    .iter()
                    .map(|&i| ColumnarTrace::from_trace(&sim_outputs[i].trace))
                    .collect();
                lane::check_columnar_observed(
                    &catalogs[*cat_idx].1,
                    HealthConfig::default(),
                    &columnar,
                )
            });

        let mut per_cell: Vec<Option<(CheckReport, MetricsSnapshot)>> =
            std::iter::repeat_with(|| None).take(cells.len()).collect();
        for ((_, indices), results) in groups.iter().zip(checked) {
            for (&cell, result) in indices.iter().zip(results) {
                per_cell[cell] = Some(result);
            }
        }

        let mut merged = MetricsSnapshot::empty();
        let mut runs: Vec<RunRecord> = Vec::with_capacity(cells.len());
        for ((spec, output), slot) in cells.iter().zip(&sim_outputs).zip(per_cell) {
            let (mut report, metrics) = slot.expect("every cell checked in exactly one lane group");
            report.context = Some(spec.context());
            merged.merge(&metrics);
            let record = RunRecord::from_run(spec, output, &report);
            if let Some(latency) = record.detection_latency {
                merged.detection_latency_s.record(latency);
            }
            runs.push(record);
        }
        Ok(CampaignReport {
            name: self.name.clone(),
            runs,
            summaries: Vec::new(),
            obs: merged.summary(),
        })
    }
}

/// Writes `events` (already in cell order) to a JSONL file at `path`,
/// creating parent directories as needed.
fn write_jsonl(path: &std::path::Path, events: &[ObsEvent]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = std::fs::File::create(path)?;
    let mut writer = JsonlWriter::new(std::io::BufWriter::new(file));
    for ev in events {
        writer.emit(*ev);
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::AttackSet;
    use adassure_control::ControllerKind;
    use adassure_scenarios::ScenarioKind;

    #[test]
    fn execute_detects_a_standard_attack() {
        let grid = Grid::new()
            .attacks(AttackSet::Standard)
            .include_clean(true)
            .seeds([1]);
        let cells = grid.cells();
        let scenario = Scenario::of_kind(ScenarioKind::Straight).unwrap();
        let cat = standard_catalog(&scenario);

        let (clean_out, clean_report) = execute(&cells[0], &cat).unwrap();
        assert!(clean_out.reached_goal);
        assert!(clean_report.is_clean(), "clean run raised {clean_report:?}");

        // Cell 1 is the gnss_bias attack; the catalog must catch it.
        let (_, attacked) = execute(&cells[1], &cat).unwrap();
        assert!(attacked.detection_latency(cells[1].alarm_start()).is_some());
    }

    #[test]
    fn campaign_produces_records_in_cell_order() {
        let grid = Grid::new()
            .scenarios([ScenarioKind::Straight])
            .controllers([ControllerKind::PurePursuit])
            .attacks(AttackSet::None)
            .include_clean(true)
            .seeds([1, 2]);
        let report = Campaign::new("unit_clean", grid).run().unwrap();
        assert_eq!(report.name, "unit_clean");
        assert_eq!(report.runs.len(), 2);
        for (i, run) in report.runs.iter().enumerate() {
            assert_eq!(run.cell, i);
            assert!(run.attack.is_none());
            assert!(!run.detected, "clean false positive: {run:?}");
        }
        assert_eq!(report.runs[0].seed, 1);
        assert_eq!(report.runs[1].seed, 2);
    }

    #[test]
    fn observed_campaign_rolls_up_metrics_in_cell_order() {
        let grid = Grid::new()
            .scenarios([ScenarioKind::Straight])
            .controllers([ControllerKind::PurePursuit])
            .attacks(AttackSet::Standard)
            .include_clean(true)
            .seeds([1]);
        let campaign = Campaign::new("unit_obs", grid);

        let baseline = campaign.run_observed(&ObsConfig::disabled()).unwrap();
        let observed = campaign.run_observed(&ObsConfig::enabled()).unwrap();

        // Observability must not perturb a single verdict or record.
        assert_eq!(baseline.runs, observed.runs);

        // The roll-up actually aggregated: every cycle of every cell is
        // counted, per-assertion verdicts are present, and each detected
        // run contributed one detection-latency sample.
        assert!(observed.obs.cycles > 0);
        assert!(!observed.obs.assertions.is_empty());
        let detected = observed.runs.iter().filter(|r| r.detected).count() as u64;
        assert!(detected > 0, "standard attacks must be detected");
        assert_eq!(observed.obs.detection_latency_s.count, detected);
        assert!(observed.obs.events_emitted > 0);
        // The disabled path counts the same cycles but emits nothing.
        assert_eq!(baseline.obs.cycles, observed.obs.cycles);
        assert_eq!(baseline.obs.events_emitted, 0);
    }

    #[test]
    fn custom_catalogs_are_honoured() {
        let grid = Grid::new().attacks(AttackSet::None).include_clean(true);
        let report = Campaign::new("unit_empty_catalog", grid)
            .with_catalog(|_| Vec::new())
            .run()
            .unwrap();
        assert!(report.runs[0].violated.is_empty());
    }
}
