//! Stream identity and the sample-batch wire format.

use adassure_trace::SignalId;

/// Generational handle for one vehicle stream.
///
/// `shard`/`slot` locate the stream's state in the fleet's slabs; `gen`
/// guards against use-after-close: closing a stream bumps the slot's
/// generation, so batches addressed to a retired id are counted as stale
/// and dropped instead of corrupting whatever stream reuses the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    pub(crate) shard: u32,
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

impl StreamId {
    /// The shard this stream lives on.
    pub fn shard(&self) -> usize {
        self.shard as usize
    }

    /// Rebuilds an id from its raw `(shard, slot, generation)` triple —
    /// the wire representation. A forged or stale triple is safe: the
    /// fleet rejects it as an unknown shard, unknown slot or stale
    /// generation, counted and typed, never applied.
    pub fn from_raw(shard: u32, slot: u32, gen: u32) -> Self {
        StreamId { shard, slot, gen }
    }

    /// The raw `(shard, slot, generation)` triple, as serialised on the
    /// wire.
    pub fn into_raw(self) -> (u32, u32, u32) {
        (self.shard, self.slot, self.gen)
    }
}

/// One timestamped signal sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Cycle timestamp (s). Samples sharing a timestamp form one cycle.
    pub t: f64,
    /// Signal name.
    pub channel: SignalId,
    /// Sampled value (non-finite values poison the slot, as in
    /// [`adassure_core::OnlineChecker::update`]).
    pub value: f64,
}

/// A batch of samples for one stream, the unit of ingestion.
///
/// Samples must be in non-decreasing timestamp order, and a cycle (a run
/// of equal timestamps) must not span batches: the shard closes the last
/// cycle at the end of the batch, and a later batch reusing that
/// timestamp is rejected as a bad cycle (monotonicity, as in
/// [`adassure_core::OnlineChecker::begin_cycle`]). Producers replaying a
/// trace get this for free by cutting batches at cycle boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleBatch {
    /// Target stream.
    pub stream: StreamId,
    /// The samples, grouped into cycles by equal timestamps.
    pub samples: Vec<Sample>,
}

impl SampleBatch {
    /// A batch addressed to `stream` with no samples yet.
    pub fn new(stream: StreamId) -> Self {
        SampleBatch {
            stream,
            samples: Vec::new(),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, t: f64, channel: impl Into<SignalId>, value: f64) {
        self.samples.push(Sample {
            t,
            channel: channel.into(),
            value,
        });
    }
}
