//! Re-execution hooks: from a stored result back to the identical run.
//!
//! Campaign artifacts are debugging entry points: a [`RunRecord`] names
//! the cell that misbehaved, and a [`ReproCase`] is a minimized violation
//! emitted by the `adassure-debug` minimizer. Both re-execute through the
//! exact same plumbing ([`crate::campaign::execute`] /
//! [`adassure_core::checker::check`]) as the original campaign, so a rerun
//! reproduces the original verdicts bit for bit.

use std::fmt;

use adassure_attacks::campaign::extended_attacks;
use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_core::{checker, CheckReport, RunContext};
use adassure_scenarios::{ReproCase, Scenario, ScenarioKind};
use adassure_sim::engine::SimOutput;
use adassure_sim::SimError;

use crate::campaign::{execute, standard_catalog};
use crate::grid::RunSpec;
use crate::record::RunRecord;

/// Failure reconstructing or re-executing a stored run.
#[derive(Debug)]
pub enum RerunError {
    /// A name in the record does not match any known scenario, controller,
    /// estimator or catalog attack.
    UnknownName(String),
    /// The reconstructed run failed in the simulator.
    Sim(SimError),
}

impl fmt::Display for RerunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RerunError::UnknownName(what) => write!(f, "rerun: unknown {what}"),
            RerunError::Sim(err) => write!(f, "rerun: {err}"),
        }
    }
}

impl std::error::Error for RerunError {}

impl From<SimError> for RerunError {
    fn from(err: SimError) -> Self {
        RerunError::Sim(err)
    }
}

/// Reconstructs the [`RunSpec`] of a campaign cell from its record — the
/// names and seed stored in every `results/<name>.json` are enough to
/// rebuild the exact grid cell.
///
/// # Errors
///
/// Returns [`RerunError::UnknownName`] when a stored name matches no known
/// kind (a record from an incompatible version).
pub fn respec(record: &RunRecord) -> Result<RunSpec, RerunError> {
    let scenario = ScenarioKind::ALL
        .into_iter()
        .find(|k| k.name() == record.scenario)
        .ok_or_else(|| RerunError::UnknownName(format!("scenario {:?}", record.scenario)))?;
    let controller = ControllerKind::ALL
        .into_iter()
        .find(|k| k.name() == record.controller)
        .ok_or_else(|| RerunError::UnknownName(format!("controller {:?}", record.controller)))?;
    let estimator = EstimatorKind::ALL
        .into_iter()
        .find(|k| k.name() == record.estimator)
        .ok_or_else(|| RerunError::UnknownName(format!("estimator {:?}", record.estimator)))?;
    let attack = match &record.attack {
        None => None,
        Some(name) => {
            let attack_start = Scenario::of_kind(scenario)?.attack_start;
            Some(
                extended_attacks(attack_start)
                    .into_iter()
                    .find(|s| s.name() == name.as_str())
                    .ok_or_else(|| RerunError::UnknownName(format!("attack {name:?}")))?,
            )
        }
    };
    Ok(RunSpec {
        index: record.cell,
        scenario,
        controller,
        estimator,
        attack,
        seed: record.seed,
    })
}

/// Re-executes one campaign cell from its record, with the standard
/// catalog: the returned report is bit-identical to the campaign's for
/// that cell.
///
/// # Errors
///
/// Returns [`RerunError::UnknownName`] for unrecognized stored names and
/// [`RerunError::Sim`] for simulator failures.
pub fn rerun(record: &RunRecord) -> Result<(SimOutput, CheckReport), RerunError> {
    let spec = respec(record)?;
    let scenario = Scenario::of_kind(spec.scenario)?;
    execute(&spec, &standard_catalog(&scenario)).map_err(RerunError::from)
}

/// Runs a self-contained [`ReproCase`] through the campaign engine's
/// standard catalog. The repro "reproduces" when the returned report
/// contains a violation of `case.expect.assertion`.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError`]).
pub fn run_repro(case: &ReproCase) -> Result<(SimOutput, CheckReport), SimError> {
    let scenario = Scenario::of_kind(case.scenario)?;
    let output = case.execute()?;
    let mut report = checker::check(&standard_catalog(&scenario), &output.trace);
    report.context = Some(RunContext {
        seed: case.seed,
        scenario: case.scenario.name().to_owned(),
        controller: case.controller.name().to_owned(),
        estimator: case.estimator.name().to_owned(),
        attack: match case.timeline.len() {
            0 => None,
            1 => Some(case.timeline.entries[0].name().to_owned()),
            n => Some(format!("timeline[{n}]")),
        },
    });
    Ok((output, report))
}

/// Whether a repro's expectation holds against a report from
/// [`run_repro`]: the expected assertion fired.
pub fn reproduces(case: &ReproCase, report: &CheckReport) -> bool {
    report
        .violations_of(&case.expect.assertion)
        .next()
        .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{AttackSet, Grid};
    use adassure_attacks::AttackTimeline;
    use adassure_scenarios::ReproExpectation;

    #[test]
    fn respec_round_trips_a_grid_cell() {
        let grid = Grid::new().attacks(AttackSet::Standard).seeds([3]);
        let cells = grid.cells();
        let spec = cells[4];
        let scenario = Scenario::of_kind(spec.scenario).unwrap();
        let (output, report) = execute(&spec, &standard_catalog(&scenario)).unwrap();
        let record = crate::record::RunRecord::from_run(&spec, &output, &report);
        let back = respec(&record).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn rerun_reproduces_the_original_report() {
        let grid = Grid::new().attacks(AttackSet::Standard).seeds([1]);
        let spec = grid.cells()[1];
        let scenario = Scenario::of_kind(spec.scenario).unwrap();
        let (output, original) = execute(&spec, &standard_catalog(&scenario)).unwrap();
        let record = crate::record::RunRecord::from_run(&spec, &output, &original);
        let (_, rerun_report) = rerun(&record).unwrap();
        assert_eq!(rerun_report, original);
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let grid = Grid::new().attacks(AttackSet::None).include_clean(true);
        let spec = grid.cells()[0];
        let scenario = Scenario::of_kind(spec.scenario).unwrap();
        let (output, report) = execute(&spec, &standard_catalog(&scenario)).unwrap();
        let mut record = crate::record::RunRecord::from_run(&spec, &output, &report);
        record.scenario = "no_such_road".into();
        assert!(matches!(respec(&record), Err(RerunError::UnknownName(_))));
    }

    #[test]
    fn run_repro_fires_the_expected_assertion() {
        // A known violating single-attack run: gnss_bias on the straight.
        let grid = Grid::new().attacks(AttackSet::Standard).seeds([1]);
        let spec = grid.cells()[0];
        let attack = spec.attack.unwrap();
        let scenario = Scenario::of_kind(spec.scenario).unwrap();
        let (_, report) = execute(&spec, &standard_catalog(&scenario)).unwrap();
        let first = report
            .violations
            .first()
            .expect("gnss_bias must violate the standard catalog");
        let case = ReproCase {
            description: "unit".into(),
            scenario: spec.scenario,
            controller: spec.controller,
            estimator: spec.estimator,
            seed: spec.seed,
            timeline: AttackTimeline::single(attack),
            expect: ReproExpectation {
                assertion: first.assertion.as_str().to_owned(),
                cycle: first.cycle,
            },
        };
        let (_, repro_report) = run_repro(&case).unwrap();
        assert!(reproduces(&case, &repro_report));
        // A single-entry timeline is the same injector stream, so the whole
        // report matches the original except for the context stamp.
        assert_eq!(repro_report.violations, report.violations);
        let v = repro_report
            .violations_of(&case.expect.assertion)
            .next()
            .unwrap();
        assert_eq!(v.cycle, case.expect.cycle);
    }
}
