//! Development probe: one run per attack on the straight scenario, printing
//! fired assertions, detection latency and diagnosis. Not one of the paper
//! tables — use it to sanity-check catalog thresholds quickly.

use adassure_control::ControllerKind;
use adassure_core::diagnosis;
use adassure_exp::campaign::{execute, standard_catalog};
use adassure_exp::{par, AttackSet, Grid};
use adassure_scenarios::{Scenario, ScenarioKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for sk in [ScenarioKind::Straight, ScenarioKind::SCurve] {
        let scenario = Scenario::of_kind(sk)?;
        let cat = standard_catalog(&scenario);
        println!(
            "=== scenario {} (len {:.0} m) ===",
            sk,
            scenario.route_length()
        );

        // One clean cell plus the full extended attack set, all through the
        // campaign executor.
        let cells = Grid::new()
            .scenarios([sk])
            .controllers([ControllerKind::PurePursuit])
            .attacks(AttackSet::Extended)
            .include_clean(true)
            .seeds([1])
            .cells();
        let mut results = par::map(&cells, |spec| {
            execute(spec, &cat).map(|(out, report)| (*spec, out, report))
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("probe cell on {sk}: {e}"))?;

        let (_, out, clean) = results.remove(0);
        println!(
            "clean: {} violations {:?}",
            clean.violations.len(),
            clean
                .violated_ids()
                .iter()
                .map(|i| i.as_str().to_owned())
                .collect::<Vec<_>>()
        );
        // Clean-envelope diagnostics for threshold calibration.
        let steer = out
            .trace
            .require(adassure_trace::well_known::STEER_CMD)
            .map_err(|e| format!("clean run on {sk}: {e}"))?;
        let d = steer.differentiate();
        let max_rate = d
            .samples()
            .iter()
            .filter(|s| s.time > 8.0)
            .map(|s| s.value.abs())
            .fold(0.0f64, f64::max);
        let gs = out
            .trace
            .series_by_name(adassure_trace::well_known::GNSS_SPEED);
        let ws = out
            .trace
            .require(adassure_trace::well_known::WHEEL_SPEED)
            .map_err(|e| format!("clean run on {sk}: {e}"))?;
        let max_gap = gs
            .map(|gs| {
                gs.samples()
                    .iter()
                    .filter(|s| s.time > 8.0)
                    .map(|s| (s.value - ws.value_at(s.time).unwrap_or(s.value)).abs())
                    .fold(0.0f64, f64::max)
            })
            .unwrap_or(0.0);
        println!("clean envelope: max|d steer/dt|={max_rate:.2} rad/s, max|gnss-wheel speed|={max_gap:.2} m/s");
        for (spec, _, report) in &results {
            let Some(attack) = spec.attack else {
                continue; // only the leading clean cell has no attack
            };
            let latency = report
                .detection_latency(attack.window.start)
                .map(|l| format!("{l:.2}s"))
                .unwrap_or_else(|| "MISS".to_owned());
            let ids: Vec<_> = report
                .violated_ids()
                .iter()
                .map(|i| i.as_str().to_owned())
                .collect();
            let diag = diagnosis::diagnose(report);
            let top = diag
                .top()
                .map(|c| c.name().to_owned())
                .unwrap_or_else(|| "-".to_owned());
            println!(
                "{:<20} latency {:<7} top-cause {:<12} fired {:?}",
                attack.name(),
                latency,
                top,
                ids
            );
        }
    }
    Ok(())
}
