//! **F1 — Anatomy of an attack**: time series of a clean run vs a GNSS
//! drift attack on the same seed, with the assertion-alarm timeline.
//!
//! Prints a decimated table to stdout and writes the full series to
//! `results/fig1_attack_anatomy.csv` for plotting.
//!
//! Regenerate with:
//! `cargo run --release -p adassure-bench --bin fig1_attack_anatomy`

use std::fmt::Write as _;

use adassure_attacks::campaign::AttackSpec;
use adassure_attacks::{AttackKind, Window};
use adassure_control::pipeline::EstimatorKind;
use adassure_control::ControllerKind;
use adassure_exp::campaign::{execute, standard_catalog};
use adassure_exp::{par, RunSpec};
use adassure_scenarios::{Scenario, ScenarioKind};
use adassure_sim::geometry::Vec2;
use adassure_trace::well_known as sig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::of_kind(ScenarioKind::SCurve)?;
    let controller = ControllerKind::PurePursuit;
    let seed = 1;
    let cat = standard_catalog(&scenario);
    let attack = AttackSpec::new(
        AttackKind::GnssDrift {
            rate: Vec2::new(0.4, 0.3),
        },
        Window::from_start(scenario.attack_start),
    );

    // Two cells — the clean reference and the attacked twin — run through
    // the campaign executor.
    let cells: Vec<RunSpec> = [None, Some(attack)]
        .into_iter()
        .enumerate()
        .map(|(index, attack)| RunSpec {
            index,
            scenario: scenario.kind,
            controller,
            estimator: EstimatorKind::Complementary,
            attack,
            seed,
        })
        .collect();
    let mut outputs = par::map(&cells, |spec| execute(spec, &cat))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("F1 cell: {e}"))?;
    let (attacked_out, report) = outputs.pop().ok_or("missing attacked cell")?;
    let (clean_out, _) = outputs.pop().ok_or("missing clean cell")?;

    println!(
        "F1: gnss_drift anatomy on `{}` ({} stack), attack from t = {:.0} s",
        scenario.kind, controller, scenario.attack_start
    );
    println!("\nalarms:");
    for v in &report.violations {
        println!("  {v}");
    }

    let clean_xt = clean_out
        .trace
        .require(sig::TRUE_XTRACK_ERR)
        .map_err(|e| format!("clean run: {e}"))?;
    let att_true_xt = attacked_out
        .trace
        .require(sig::TRUE_XTRACK_ERR)
        .map_err(|e| format!("attacked run: {e}"))?;
    let att_est_xt = attacked_out
        .trace
        .require(sig::XTRACK_ERR)
        .map_err(|e| format!("attacked run: {e}"))?;
    let att_innov = attacked_out
        .trace
        .require(sig::INNOVATION)
        .map_err(|e| format!("attacked run: {e}"))?;

    println!(
        "\n{:>6} {:>14} {:>14} {:>14} {:>12}",
        "t(s)", "clean |xt| (m)", "attacked true |xt|", "attacked est |xt|", "innovation"
    );
    let mut csv = String::from(
        "t,clean_true_xtrack,attacked_true_xtrack,attacked_est_xtrack,attacked_innovation\n",
    );
    let end = attacked_out.trace.span().map_or(0.0, |(_, b)| b);
    let mut t = 0.0;
    while t <= end {
        let c = clean_xt.value_at(t).unwrap_or(f64::NAN);
        let a_true = att_true_xt.value_at(t).unwrap_or(f64::NAN);
        let a_est = att_est_xt.value_at(t).unwrap_or(f64::NAN);
        let innov = att_innov.value_before(t).unwrap_or(f64::NAN);
        let _ = writeln!(csv, "{t},{c},{a_true},{a_est},{innov}");
        if (t * 10.0).round() as i64 % 40 == 0 {
            println!(
                "{t:>6.1} {:>14.3} {:>14.3} {:>14.3} {:>12.3}",
                c.abs(),
                a_true.abs(),
                a_est.abs(),
                innov
            );
        }
        t += 0.1;
    }

    std::fs::create_dir_all("results").map_err(|e| format!("create results dir: {e}"))?;
    std::fs::write("results/fig1_attack_anatomy.csv", csv)
        .map_err(|e| format!("write results/fig1_attack_anatomy.csv: {e}"))?;
    println!("\nfull series written to results/fig1_attack_anatomy.csv");
    println!("\n(the drift attack's signature: the *estimated* cross-track error stays");
    println!(" small — the stack happily follows the spoofed path — while the *true*");
    println!(" error grows without bound until behavioural assertions fire.)");
    Ok(())
}
