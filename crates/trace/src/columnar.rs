//! Columnar trace storage and the `.adt` binary format.
//!
//! A [`crate::Trace`] is row-oriented: per signal, a vector of
//! `(time, value)` samples. That shape is right for recording but wrong for
//! batch checking, where the evaluator wants each signal's values as one
//! contiguous `f64` run and a shared *cycle index* mapping every sample to
//! its replay cycle. [`ColumnarTrace`] is that shape, and `.adt` is its
//! on-disk serialisation — a flat, little-endian, 8-byte-aligned layout a
//! reader could `mmap` and index directly.
//!
//! # `.adt` layout (version 1)
//!
//! All integers and floats are little-endian; every numeric section starts
//! on an 8-byte boundary (the variable-length sections are zero-padded up
//! to a multiple of 8).
//!
//! | offset | field |
//! |--------|-------|
//! | 0      | magic `b"ADTRAC"` (6 bytes) |
//! | 6      | format version byte (`1`) |
//! | 7      | endianness byte (`1` = little-endian) |
//! | 8      | `u32` signal count |
//! | 12     | `u32` reserved (must be 0) |
//! | 16     | `u64` cycle count |
//! | 24     | `u64` total sample count |
//! | 32     | `u64` name-table byte length (before padding) |
//! | 40     | name table: signal names joined by `\n`, zero-padded to ×8 |
//! | …      | per-signal sample counts: `u64` × signal count |
//! | …      | cycle times: `f64` × cycle count (strictly increasing) |
//! | …      | per signal, in name order: times `f64`×nᵢ, then values `f64`×nᵢ |
//! | …      | cycle indices: `u32` × total samples, zero-padded to ×8 |
//!
//! The *cycle times* array is the merged grid of every distinct timestamp
//! across all signals — exactly the cycle boundaries the offline checker
//! replays — and each sample's cycle index points at the grid entry whose
//! time equals the sample's own. Decoding validates every invariant
//! (monotone finite times, index/time agreement, exact section lengths) and
//! returns a typed [`TraceError`] rather than panicking on corrupt input.

use std::path::Path;

use crate::{SignalId, Trace, TraceError};

/// `.adt` magic bytes.
const MAGIC: &[u8; 6] = b"ADTRAC";
/// Current format version.
const VERSION: u8 = 1;
/// Endianness marker: 1 = little-endian (the only defined value).
const LITTLE_ENDIAN: u8 = 1;
/// Fixed-size header length in bytes (through `name_table_len`).
const HEADER_LEN: usize = 40;

/// A trace transposed into columnar form: per-signal contiguous sample
/// arrays plus a shared cycle grid.
///
/// Conversion from and back to [`Trace`] is lossless
/// ([`ColumnarTrace::from_trace`] / [`ColumnarTrace::to_trace`]), and the
/// binary round-trip ([`ColumnarTrace::encode`] /
/// [`ColumnarTrace::decode`]) preserves every `f64` bit-for-bit.
///
/// # Example
///
/// ```
/// use adassure_trace::{ColumnarTrace, Trace};
///
/// let mut t = Trace::new();
/// t.record("speed", 0.0, 4.0);
/// t.record("speed", 0.1, 4.5);
/// let col = ColumnarTrace::from_trace(&t);
/// let bytes = col.encode();
/// let back = ColumnarTrace::decode(&bytes).unwrap();
/// assert_eq!(back.to_trace(), t);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarTrace {
    /// Signal ids, sorted by name (the [`Trace`] iteration order).
    signals: Vec<SignalId>,
    /// Per-signal `(start, len)` range into the sample arrays.
    ranges: Vec<(usize, usize)>,
    /// All sample timestamps, signal-major (signal 0's samples, then 1's…).
    times: Vec<f64>,
    /// All sample values, parallel to `times`.
    values: Vec<f64>,
    /// Per sample: index into `cycle_times` of the replay cycle it lands on.
    cycle_idx: Vec<u32>,
    /// The merged, strictly increasing grid of distinct timestamps.
    cycle_times: Vec<f64>,
}

impl ColumnarTrace {
    /// Transposes a [`Trace`] into columnar form.
    ///
    /// # Panics
    ///
    /// Panics if the trace holds more than `u32::MAX` distinct timestamps
    /// (far beyond any recorded run).
    pub fn from_trace(trace: &Trace) -> Self {
        // Each series is already strictly time-ordered (and finite, a
        // `Trace` invariant), so the grid is an incremental sorted merge —
        // no O(n log n) sort over the full sample count. Series sharing a
        // grid (the common fixed-rate case) reduce to an equality scan.
        let mut cycle_times: Vec<f64> = Vec::new();
        for series in trace.iter() {
            let samples = series.samples();
            if samples.len() <= cycle_times.len()
                && samples.iter().zip(&cycle_times).all(|(s, &t)| s.time == t)
            {
                continue;
            }
            let mut merged = Vec::with_capacity(cycle_times.len() + samples.len());
            let (mut i, mut j) = (0, 0);
            while i < cycle_times.len() && j < samples.len() {
                let (a, b) = (cycle_times[i], samples[j].time);
                merged.push(a.min(b));
                i += usize::from(a <= b);
                j += usize::from(b <= a);
            }
            merged.extend_from_slice(&cycle_times[i..]);
            merged.extend(samples[j..].iter().map(|s| s.time));
            cycle_times = merged;
        }
        assert!(
            u32::try_from(cycle_times.len()).is_ok(),
            "more than u32::MAX distinct timestamps"
        );

        let total = trace.sample_count();
        let mut signals = Vec::with_capacity(trace.signal_count());
        let mut ranges = Vec::with_capacity(trace.signal_count());
        let mut times = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        let mut cycle_idx = Vec::with_capacity(total);
        for series in trace.iter() {
            let start = times.len();
            let samples = series.samples();
            if samples.len() == cycle_times.len() {
                // Dense series: an equal-length strictly-increasing subset
                // of the grid is the grid itself, so cycle indices are the
                // identity — no per-sample grid walk.
                times.extend(samples.iter().map(|s| s.time));
                values.extend(samples.iter().map(|s| s.value));
                #[allow(clippy::cast_possible_truncation)] // bounded by the assert above
                cycle_idx.extend(0..samples.len() as u32);
            } else {
                // Series timestamps ascend, so one forward cursor over the
                // grid resolves every sample's cycle without a binary search.
                let mut grid = 0usize;
                for sample in samples {
                    while cycle_times[grid] < sample.time {
                        grid += 1;
                    }
                    debug_assert_eq!(cycle_times[grid], sample.time);
                    times.push(sample.time);
                    values.push(sample.value);
                    #[allow(clippy::cast_possible_truncation)] // bounded by the assert above
                    cycle_idx.push(grid as u32);
                }
            }
            signals.push(series.id().clone());
            ranges.push((start, times.len() - start));
        }
        ColumnarTrace {
            signals,
            ranges,
            times,
            values,
            cycle_idx,
            cycle_times,
        }
    }

    /// Reconstructs the row-oriented [`Trace`]. Lossless: every sample's
    /// time and value come back bit-identical.
    pub fn to_trace(&self) -> Trace {
        let mut trace = Trace::new();
        for (i, id) in self.signals.iter().enumerate() {
            let (times, values, _) = self.series(i);
            let series = crate::Series::from_samples(
                id.clone(),
                times.iter().copied().zip(values.iter().copied()),
            )
            .expect("columnar invariants guarantee valid series");
            trace.insert_series(series);
        }
        trace
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of replay cycles (distinct timestamps).
    pub fn cycle_count(&self) -> usize {
        self.cycle_times.len()
    }

    /// Total number of samples across all signals.
    pub fn sample_count(&self) -> usize {
        self.times.len()
    }

    /// Signal ids in storage (name-sorted) order.
    pub fn signals(&self) -> &[SignalId] {
        &self.signals
    }

    /// The merged cycle grid, strictly increasing.
    pub fn cycle_times(&self) -> &[f64] {
        &self.cycle_times
    }

    /// Timestamp of the final cycle; `0.0` for an empty trace (matching
    /// [`Trace::span`]'s end as the offline checker uses it).
    pub fn end_time(&self) -> f64 {
        self.cycle_times.last().copied().unwrap_or(0.0)
    }

    /// The sample columns of signal `i` (storage order):
    /// `(times, values, cycle indices)`, all the same length.
    pub fn series(&self, i: usize) -> (&[f64], &[f64], &[u32]) {
        let (start, len) = self.ranges[i];
        (
            &self.times[start..start + len],
            &self.values[start..start + len],
            &self.cycle_idx[start..start + len],
        )
    }

    /// Serialises to `.adt` bytes (see the module docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let name_table: Vec<u8> = self
            .signals
            .iter()
            .map(SignalId::as_str)
            .collect::<Vec<_>>()
            .join("\n")
            .into_bytes();

        let mut out = Vec::with_capacity(
            HEADER_LEN
                + pad8(name_table.len())
                + 8 * self.signals.len()
                + 8 * self.cycle_times.len()
                + 16 * self.times.len()
                + pad8(4 * self.cycle_idx.len()),
        );
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(LITTLE_ENDIAN);
        #[allow(clippy::cast_possible_truncation)] // signal count bounded by u32 slots
        out.extend_from_slice(&(self.signals.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        out.extend_from_slice(&(self.cycle_times.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.times.len() as u64).to_le_bytes());
        out.extend_from_slice(&(name_table.len() as u64).to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);

        out.extend_from_slice(&name_table);
        out.resize(pad8(out.len()), 0);
        for &(_, len) in &self.ranges {
            out.extend_from_slice(&(len as u64).to_le_bytes());
        }
        for &t in &self.cycle_times {
            out.extend_from_slice(&t.to_le_bytes());
        }
        for (i, _) in self.signals.iter().enumerate() {
            let (times, values, _) = self.series(i);
            for &t in times {
                out.extend_from_slice(&t.to_le_bytes());
            }
            for &v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        for &c in &self.cycle_idx {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.resize(pad8(out.len()), 0);
        out
    }

    /// Decodes `.adt` bytes, validating the full set of format invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadBinary`] — never panics — on any corrupt,
    /// truncated or invariant-violating input: wrong magic/version, short
    /// sections, trailing garbage, unsorted names, non-monotone or
    /// non-finite times, or cycle indices that disagree with the grid.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(6, "magic")?;
        if magic != MAGIC {
            return Err(r.bad(0, "not an .adt file (bad magic)"));
        }
        let version = r.take(1, "version byte")?[0];
        if version != VERSION {
            return Err(r.bad(6, format!("unsupported format version {version}")));
        }
        let endian = r.take(1, "endianness byte")?[0];
        if endian != LITTLE_ENDIAN {
            return Err(r.bad(7, format!("unsupported endianness marker {endian}")));
        }
        let signal_count = r.u32("signal count")? as usize;
        let reserved = r.u32("reserved field")?;
        if reserved != 0 {
            return Err(r.bad(12, "reserved field must be zero"));
        }
        let cycle_count = r.usize64("cycle count")?;
        let total_samples = r.usize64("total sample count")?;
        let name_table_len = r.usize64("name table length")?;

        let name_bytes = r.take(name_table_len, "name table")?.to_vec();
        r.align8("name table padding")?;
        let names = parse_names(&name_bytes, signal_count, &r)?;

        let mut counts = Vec::with_capacity(signal_count);
        for i in 0..signal_count {
            counts.push(r.usize64(&format!("sample count of signal {i}"))?);
        }
        let declared: usize = counts.iter().try_fold(0usize, |acc, &n| {
            acc.checked_add(n)
                .filter(|&s| s <= total_samples)
                .ok_or_else(|| r.bad(24, "per-signal sample counts overflow the total"))
        })?;
        if declared != total_samples {
            return Err(r.bad(
                24,
                format!("per-signal counts sum to {declared}, header says {total_samples}"),
            ));
        }

        let cycle_times = r.f64s(cycle_count, "cycle times")?;
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(b > a)` also rejects NaN
        for w in cycle_times.windows(2) {
            if !(w[1] > w[0]) {
                return Err(r.bad(r.pos, "cycle times are not strictly increasing"));
            }
        }
        if cycle_times.iter().any(|t| !t.is_finite()) {
            return Err(r.bad(r.pos, "non-finite cycle time"));
        }

        let mut times = Vec::with_capacity(total_samples);
        let mut values = Vec::with_capacity(total_samples);
        let mut ranges = Vec::with_capacity(signal_count);
        for (i, &n) in counts.iter().enumerate() {
            let start = times.len();
            let t = r.f64s(n, &format!("times of signal {i}"))?;
            let v = r.f64s(n, &format!("values of signal {i}"))?;
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(b > a)` also rejects NaN
            for w in t.windows(2) {
                if !(w[1] > w[0]) {
                    return Err(r.bad(
                        r.pos,
                        format!(
                            "timestamps of signal `{}` are not strictly increasing",
                            names[i]
                        ),
                    ));
                }
            }
            if t.iter().any(|x| !x.is_finite()) || v.iter().any(|x| !x.is_finite()) {
                return Err(r.bad(r.pos, format!("non-finite sample on signal `{}`", names[i])));
            }
            times.extend_from_slice(&t);
            values.extend_from_slice(&v);
            ranges.push((start, n));
        }

        let mut cycle_idx = Vec::with_capacity(total_samples);
        for i in 0..total_samples {
            cycle_idx.push(r.u32(&format!("cycle index of sample {i}"))?);
        }
        r.align8("cycle index padding")?;
        if r.pos != bytes.len() {
            return Err(r.bad(r.pos, "trailing bytes after the cycle index section"));
        }
        for (j, &c) in cycle_idx.iter().enumerate() {
            let Some(&grid_time) = cycle_times.get(c as usize) else {
                return Err(r.bad(r.pos, format!("cycle index {c} out of range (sample {j})")));
            };
            if grid_time.to_bits() != times[j].to_bits() {
                return Err(r.bad(
                    r.pos,
                    format!("cycle index of sample {j} points at a different timestamp"),
                ));
            }
        }

        Ok(ColumnarTrace {
            signals: names.into_iter().map(SignalId::new).collect(),
            ranges,
            times,
            values,
            cycle_idx,
            cycle_times,
        })
    }

    /// Writes the encoded `.adt` document to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let path = path.as_ref();
        std::fs::write(path, self.encode())
            .map_err(|e| TraceError::Io(format!("write {}: {e}", path.display())))
    }

    /// Reads and decodes an `.adt` document from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failure and
    /// [`TraceError::BadBinary`] on a corrupt document.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| TraceError::Io(format!("read {}: {e}", path.display())))?;
        ColumnarTrace::decode(&bytes)
    }
}

/// Rounds `n` up to the next multiple of 8.
fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Splits and validates the decoded name table: exactly `signal_count`
/// non-empty names, strictly ascending (the sorted-by-name invariant).
fn parse_names(
    bytes: &[u8],
    signal_count: usize,
    r: &Reader<'_>,
) -> Result<Vec<String>, TraceError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| r.bad(HEADER_LEN, "name table is not valid UTF-8"))?;
    let names: Vec<&str> = if text.is_empty() {
        Vec::new()
    } else {
        text.split('\n').collect()
    };
    if names.len() != signal_count {
        return Err(r.bad(
            HEADER_LEN,
            format!(
                "name table holds {} names, header says {signal_count}",
                names.len()
            ),
        ));
    }
    if names.iter().any(|n| n.is_empty()) {
        return Err(r.bad(HEADER_LEN, "empty signal name in name table"));
    }
    for w in names.windows(2) {
        if w[1] <= w[0] {
            return Err(r.bad(HEADER_LEN, "signal names are not sorted and unique"));
        }
    }
    Ok(names.into_iter().map(str::to_owned).collect())
}

/// Bounds-checked little-endian cursor over the input bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn bad(&self, offset: usize, message: impl Into<String>) -> TraceError {
        TraceError::BadBinary {
            offset,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.bad(self.pos, format!("truncated: {what} needs {n} bytes")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, TraceError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn usize64(&mut self, what: &str) -> Result<usize, TraceError> {
        let b = self.take(8, what)?;
        let v = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        usize::try_from(v).map_err(|_| self.bad(self.pos - 8, format!("{what} {v} exceeds usize")))
    }

    fn f64s(&mut self, n: usize, what: &str) -> Result<Vec<f64>, TraceError> {
        let needed = n
            .checked_mul(8)
            .ok_or_else(|| self.bad(self.pos, format!("{what} length overflows")))?;
        let b = self.take(needed, what)?;
        Ok(b.chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Skips padding up to the next 8-byte boundary, requiring zero bytes.
    fn align8(&mut self, what: &str) -> Result<(), TraceError> {
        let target = pad8(self.pos);
        let pad = self.take(target - self.pos, what)?;
        if pad.iter().any(|&b| b != 0) {
            return Err(self.bad(self.pos - pad.len(), format!("non-zero {what}")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_rate_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..20 {
            let time = f64::from(i) * 0.05;
            t.record("fast", time, f64::from(i) * 0.5 - 3.0);
            if i % 3 == 0 {
                t.record("slow", time, -f64::from(i));
            }
        }
        t.record("offgrid", 0.013, 7.5); // timestamp no other signal shares
        t
    }

    #[test]
    fn trace_round_trips_losslessly() {
        let t = mixed_rate_trace();
        let col = ColumnarTrace::from_trace(&t);
        assert_eq!(col.to_trace(), t);
        assert_eq!(col.sample_count(), t.sample_count());
        // 20 shared cycles plus the off-grid one.
        assert_eq!(col.cycle_count(), 21);
        assert_eq!(col.end_time(), t.span().unwrap().1);
    }

    #[test]
    fn binary_round_trips_bit_identically() {
        let t = mixed_rate_trace();
        let col = ColumnarTrace::from_trace(&t);
        let bytes = col.encode();
        let back = ColumnarTrace::decode(&bytes).unwrap();
        assert_eq!(back, col);
        assert_eq!(back.to_trace(), t);
        // Re-encoding is deterministic down to the byte.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn empty_trace_round_trips() {
        let col = ColumnarTrace::from_trace(&Trace::new());
        assert_eq!(col.cycle_count(), 0);
        assert_eq!(col.end_time(), 0.0);
        let back = ColumnarTrace::decode(&col.encode()).unwrap();
        assert!(back.to_trace().is_empty());
    }

    #[test]
    fn cycle_index_points_at_shared_grid() {
        let t = mixed_rate_trace();
        let col = ColumnarTrace::from_trace(&t);
        for i in 0..col.signal_count() {
            let (times, _, cycles) = col.series(i);
            for (&time, &c) in times.iter().zip(cycles) {
                assert_eq!(col.cycle_times()[c as usize].to_bits(), time.to_bits());
            }
        }
    }

    #[test]
    fn sections_are_8_byte_aligned() {
        let bytes = ColumnarTrace::from_trace(&mixed_rate_trace()).encode();
        assert_eq!(bytes.len() % 8, 0);
        assert_eq!(&bytes[..6], MAGIC);
        assert_eq!(bytes[6], VERSION);
        assert_eq!(bytes[7], LITTLE_ENDIAN);
    }

    #[test]
    fn corrupt_header_yields_typed_error() {
        let mut bytes = ColumnarTrace::from_trace(&mixed_rate_trace()).encode();
        bytes[0] = b'X';
        assert!(matches!(
            ColumnarTrace::decode(&bytes),
            Err(TraceError::BadBinary { .. })
        ));
        let mut bytes = ColumnarTrace::from_trace(&mixed_rate_trace()).encode();
        bytes[6] = 99; // unknown version
        assert!(matches!(
            ColumnarTrace::decode(&bytes),
            Err(TraceError::BadBinary { .. })
        ));
    }

    #[test]
    fn truncated_file_yields_typed_error_never_panic() {
        let bytes = ColumnarTrace::from_trace(&mixed_rate_trace()).encode();
        for len in 0..bytes.len() {
            match ColumnarTrace::decode(&bytes[..len]) {
                Err(TraceError::BadBinary { .. }) => {}
                other => panic!("truncation at {len} gave {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = ColumnarTrace::from_trace(&mixed_rate_trace()).encode();
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            ColumnarTrace::decode(&bytes),
            Err(TraceError::BadBinary { .. })
        ));
    }

    #[test]
    fn corrupted_sample_invariants_are_rejected() {
        let t = mixed_rate_trace();
        let base = ColumnarTrace::from_trace(&t).encode();
        // Flip one byte at a time across the numeric sections; decode must
        // either succeed (byte was insignificant) or fail typed, not panic.
        for pos in (HEADER_LEN..base.len()).step_by(7) {
            let mut bytes = base.clone();
            bytes[pos] ^= 0xFF;
            match ColumnarTrace::decode(&bytes) {
                Ok(_) | Err(TraceError::BadBinary { .. }) => {}
                other => panic!("byte flip at {pos} gave {other:?}"),
            }
        }
    }
}
