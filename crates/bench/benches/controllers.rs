//! Criterion micro-benchmarks of the four lateral controllers' per-cycle
//! cost (the denominator of the F3 overhead comparison: the monitor should
//! be cheap *relative to the controllers it watches*).

use criterion::{criterion_group, criterion_main, Criterion};

use adassure_control::lqr::{Lqr, LqrConfig};
use adassure_control::mpc::{Mpc, MpcConfig};
use adassure_control::pure_pursuit::{PurePursuit, PurePursuitConfig};
use adassure_control::stanley::{Stanley, StanleyConfig};
use adassure_control::{Estimate, LateralController};
use adassure_sim::geometry::Vec2;
use adassure_sim::track::Track;

fn estimate() -> Estimate {
    Estimate {
        position: Vec2::new(50.0, 0.4),
        heading: 0.02,
        speed: 8.0,
        yaw_rate: 0.01,
    }
}

fn bench_controllers(c: &mut Criterion) {
    let track = Track::line([0.0, 0.0], [300.0, 0.0], 1.0).expect("track");
    let est = estimate();

    let mut pp = PurePursuit::new(PurePursuitConfig::standard());
    c.bench_function("controller/pure_pursuit_step", |b| {
        b.iter(|| pp.steer(std::hint::black_box(&est), &track, 0.01))
    });

    let mut stanley = Stanley::new(StanleyConfig::standard());
    c.bench_function("controller/stanley_step", |b| {
        b.iter(|| stanley.steer(std::hint::black_box(&est), &track, 0.01))
    });

    let mut lqr = Lqr::new(LqrConfig::standard());
    c.bench_function("controller/lqr_step", |b| {
        b.iter(|| lqr.steer(std::hint::black_box(&est), &track, 0.01))
    });

    let mut mpc = Mpc::new(MpcConfig::standard());
    c.bench_function("controller/mpc_step_amortised", |b| {
        b.iter(|| mpc.steer(std::hint::black_box(&est), &track, 0.01))
    });
}

fn bench_lqr_gain_solve(c: &mut Criterion) {
    c.bench_function("controller/lqr_dare_solve", |b| {
        b.iter(|| Lqr::solve_gains(std::hint::black_box(&LqrConfig::standard()), 10.0))
    });
}

criterion_group!(benches, bench_controllers, bench_lqr_gain_solve);
criterion_main!(benches);
