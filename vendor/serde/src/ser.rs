//! Serialization half: `Serialize`, `Serializer` and the compound-helper
//! traits, mirroring the real serde trait shapes.

use std::fmt::Display;

/// Error raised by a serializer.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value serializable into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format backend (mirrors `serde::Serializer`).
pub trait Serializer: Sized {
    /// Output value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples and tuple structs/variants.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error> {
        let _ = name;
        self.serialize_unit()
    }
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct (transparently, like serde).
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error> {
        let _ = name;
        value.serialize(self)
    }
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins serializing a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTuple, Self::Error> {
        let _ = name;
        self.serialize_tuple(len)
    }
    /// Begins serializing a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins serializing a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sequence compound serializer.
pub trait SerializeSeq {
    /// Output value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple compound serializer (also used for tuple structs/variants).
pub trait SerializeTuple {
    /// Output value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serializes one field (alias used by tuple-variant derive code).
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error> {
        self.serialize_element(value)
    }
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map compound serializer.
pub trait SerializeMap {
    /// Output value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one key/value entry.
    fn serialize_entry<K: ?Sized + Serialize, V: ?Sized + Serialize>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct compound serializer (also used for struct variants).
pub trait SerializeStruct {
    /// Output value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_int {
    ($($ty:ty => $method:ident as $as_ty:ty),* $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $as_ty)
            }
        })*
    };
}

impl_serialize_int! {
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S: Serializer, T: Serialize>(
    serializer: S,
    len: usize,
    items: impl IntoIterator<Item = T>,
) -> Result<S::Ok, S::Error> {
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in items {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, N, self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let len = impl_serialize_tuple!(@count $($name)+);
                let mut tup = serializer.serialize_tuple(len)?;
                $(SerializeTuple::serialize_element(&mut tup, &self.$idx)?;)+
                tup.end()
            }
        })*
    };
    (@count $($name:ident)+) => { [$(impl_serialize_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
