//! Seeded noise generation for sensor models.
//!
//! The workspace avoids `rand_distr` (not on the approved dependency list);
//! Gaussian samples are drawn with the Box–Muller transform on top of
//! `rand`'s uniform source, which is plenty for sensor-noise purposes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Gaussian noise channel with constant bias.
///
/// `sample` returns `bias + N(0, std_dev²)` draws. A `std_dev` of zero turns
/// the channel into a pure bias (useful in tests and golden runs).
///
/// # Example
///
/// ```
/// use adassure_sim::noise::Gaussian;
/// use rand::SeedableRng;
///
/// let noise = Gaussian::new(0.0, 1.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
/// let x = noise.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// Constant offset added to every sample.
    pub bias: f64,
    /// Standard deviation of the zero-mean component.
    pub std_dev: f64,
}

impl Gaussian {
    /// Creates a noise channel.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(bias: f64, std_dev: f64) -> Self {
        assert!(
            bias.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "gaussian parameters must be finite with non-negative std_dev"
        );
        Gaussian { bias, std_dev }
    }

    /// A noiseless channel (zero bias, zero deviation).
    pub fn none() -> Self {
        Gaussian::new(0.0, 0.0)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.bias + self.std_dev * standard_normal(rng)
    }
}

impl Default for Gaussian {
    fn default() -> Self {
        Gaussian::none()
    }
}

/// Draws a standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.06, "var {var}");
    }

    #[test]
    fn bias_shifts_samples() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = Gaussian::new(5.0, 0.0);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let g = Gaussian::new(0.0, 2.0);
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut a), g.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "gaussian parameters")]
    fn negative_std_dev_panics() {
        let _ = Gaussian::new(0.0, -1.0);
    }

    #[test]
    fn default_is_noiseless() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(Gaussian::default().sample(&mut rng), 0.0);
    }
}
