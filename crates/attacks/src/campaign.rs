//! The standard attack catalog and campaign spec types.
//!
//! Every experiment table iterates the same eleven attack specs so results
//! are comparable across controllers, scenarios and threshold settings.

use serde::{Deserialize, Serialize};

use adassure_sim::geometry::Vec2;

use crate::{AttackInjector, AttackKind, Window};

/// One attack to run: a kind plus its activation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// The attack to inject.
    pub kind: AttackKind,
    /// When it is active.
    pub window: Window,
}

impl AttackSpec {
    /// Creates a spec.
    pub fn new(kind: AttackKind, window: Window) -> Self {
        AttackSpec { kind, window }
    }

    /// Builds the injector for this spec.
    pub fn injector(&self, seed: u64) -> AttackInjector {
        AttackInjector::new(self.kind, self.window, seed)
    }

    /// Row key used in experiment tables.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

/// The standard attack catalog with representative magnitudes, each
/// activating at `start` seconds and staying active.
///
/// Magnitudes are chosen to be *meaningful but not absurd*: large enough to
/// endanger path tracking, small enough that naive eyeballing of a single
/// signal does not trivially reveal them.
///
/// # Example
///
/// ```
/// let attacks = adassure_attacks::campaign::standard_attacks(10.0);
/// assert_eq!(attacks.len(), 11);
/// ```
pub fn standard_attacks(start: f64) -> Vec<AttackSpec> {
    let w = Window::from_start(start);
    vec![
        AttackSpec::new(
            AttackKind::GnssBias {
                offset: Vec2::new(2.5, -2.0),
            },
            w,
        ),
        AttackSpec::new(
            AttackKind::GnssDrift {
                rate: Vec2::new(0.4, 0.3),
            },
            w,
        ),
        AttackSpec::new(
            AttackKind::GnssJump {
                offset: Vec2::new(12.0, 8.0),
            },
            w,
        ),
        AttackSpec::new(AttackKind::GnssNoise { std_dev: 2.0 }, w),
        AttackSpec::new(AttackKind::GnssFreeze, w),
        AttackSpec::new(AttackKind::GnssDropout, w),
        AttackSpec::new(AttackKind::GnssDelay { delay: 1.5 }, w),
        AttackSpec::new(AttackKind::WheelSpeedScale { factor: 0.6 }, w),
        AttackSpec::new(AttackKind::WheelSpeedFreeze, w),
        AttackSpec::new(AttackKind::ImuYawBias { bias: 0.08 }, w),
        AttackSpec::new(AttackKind::CompassBias { bias: 0.25 }, w),
    ]
}

/// The extended attack catalog: the standard eleven plus three gain/noise/
/// drift variants exercising subtler fault shapes (a wheel-encoder noise
/// burst, an IMU gain fault only visible while turning, and the compass
/// analogue of the GNSS drag-away spoof).
pub fn extended_attacks(start: f64) -> Vec<AttackSpec> {
    let w = Window::from_start(start);
    let mut attacks = standard_attacks(start);
    attacks.push(AttackSpec::new(
        AttackKind::WheelSpeedNoise { std_dev: 2.5 },
        w,
    ));
    attacks.push(AttackSpec::new(AttackKind::ImuYawScale { factor: 1.6 }, w));
    attacks.push(AttackSpec::new(AttackKind::CompassDrift { rate: 0.02 }, w));
    attacks
}

/// Scales the magnitude of an attack by `factor` (used by the threshold /
/// severity ablations). Attacks without a magnitude (freeze, dropout) are
/// returned unchanged.
pub fn scale_attack(kind: AttackKind, factor: f64) -> AttackKind {
    match kind {
        AttackKind::GnssBias { offset } => AttackKind::GnssBias {
            offset: offset * factor,
        },
        AttackKind::GnssDrift { rate } => AttackKind::GnssDrift {
            rate: rate * factor,
        },
        AttackKind::GnssJump { offset } => AttackKind::GnssJump {
            offset: offset * factor,
        },
        AttackKind::GnssNoise { std_dev } => AttackKind::GnssNoise {
            std_dev: std_dev * factor,
        },
        AttackKind::GnssDelay { delay } => AttackKind::GnssDelay {
            delay: delay * factor,
        },
        AttackKind::WheelSpeedScale { factor: f } => AttackKind::WheelSpeedScale {
            // Scaling a multiplicative attack means moving it further from 1.
            factor: 1.0 + (f - 1.0) * factor,
        },
        AttackKind::WheelSpeedNoise { std_dev } => AttackKind::WheelSpeedNoise {
            std_dev: std_dev * factor,
        },
        AttackKind::ImuYawBias { bias } => AttackKind::ImuYawBias {
            bias: bias * factor,
        },
        AttackKind::ImuYawScale { factor: f } => AttackKind::ImuYawScale {
            factor: 1.0 + (f - 1.0) * factor,
        },
        AttackKind::CompassBias { bias } => AttackKind::CompassBias {
            bias: bias * factor,
        },
        AttackKind::CompassDrift { rate } => AttackKind::CompassDrift {
            rate: rate * factor,
        },
        AttackKind::GnssFreeze | AttackKind::GnssDropout | AttackKind::WheelSpeedFreeze => kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn standard_catalog_is_complete_and_unique() {
        let attacks = standard_attacks(10.0);
        assert_eq!(attacks.len(), 11);
        let names: HashSet<_> = attacks.iter().map(AttackSpec::name).collect();
        assert_eq!(names.len(), attacks.len());
        assert!(attacks.iter().all(|a| a.window.start == 10.0));
    }

    #[test]
    fn scaling_magnitude_attacks() {
        let scaled = scale_attack(
            AttackKind::GnssBias {
                offset: Vec2::new(2.0, 0.0),
            },
            2.0,
        );
        assert_eq!(
            scaled,
            AttackKind::GnssBias {
                offset: Vec2::new(4.0, 0.0)
            }
        );
        // Multiplicative attacks scale their distance from identity.
        let scaled = scale_attack(AttackKind::WheelSpeedScale { factor: 0.6 }, 2.0);
        match scaled {
            AttackKind::WheelSpeedScale { factor } => assert!((factor - 0.2).abs() < 1e-12),
            other => panic!("unexpected kind {other:?}"),
        }
        // Magnitude-free attacks are unchanged.
        assert_eq!(
            scale_attack(AttackKind::GnssFreeze, 5.0),
            AttackKind::GnssFreeze
        );
    }

    #[test]
    fn extended_catalog_supersets_the_standard_one() {
        let standard = standard_attacks(5.0);
        let extended = extended_attacks(5.0);
        assert_eq!(extended.len(), standard.len() + 3);
        let names: HashSet<_> = extended.iter().map(AttackSpec::name).collect();
        assert_eq!(names.len(), extended.len());
        for a in &standard {
            assert!(names.contains(a.name()));
        }
    }

    #[test]
    fn new_attack_kinds_scale_sensibly() {
        match scale_attack(AttackKind::CompassDrift { rate: 0.02 }, 2.0) {
            AttackKind::CompassDrift { rate } => assert!((rate - 0.04).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        match scale_attack(AttackKind::ImuYawScale { factor: 1.6 }, 0.5) {
            AttackKind::ImuYawScale { factor } => assert!((factor - 1.3).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spec_builds_matching_injector() {
        let spec = AttackSpec::new(AttackKind::GnssDropout, Window::from_start(3.0));
        let inj = spec.injector(1);
        assert_eq!(inj.kind().name(), "gnss_dropout");
        assert_eq!(inj.window().start, 3.0);
    }
}
