//! Planar geometry: vectors, poses and angle arithmetic.

use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 2-D vector / point in metres.
///
/// # Example
///
/// ```
/// use adassure_sim::geometry::Vec2;
///
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a + Vec2::new(1.0, -4.0), Vec2::new(4.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// East / x component (m).
    pub x: f64,
    /// North / y component (m).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at `angle` radians from the +x axis.
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product). Positive
    /// when `other` lies counter-clockwise of `self`.
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Angle of the vector from the +x axis, in `(-pi, pi]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// The vector rotated counter-clockwise by `angle` radians.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// The vector rotated 90° counter-clockwise.
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Unit vector in the same direction, or `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        (n > 0.0).then(|| self * (1.0 / n))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Whether both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<[f64; 2]> for Vec2 {
    fn from([x, y]: [f64; 2]) -> Self {
        Vec2::new(x, y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

/// A planar pose: position plus heading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Position (m).
    pub position: Vec2,
    /// Heading (rad) in `(-pi, pi]`, measured counter-clockwise from +x.
    pub heading: f64,
}

impl Pose {
    /// Creates a pose.
    pub fn new(position: impl Into<Vec2>, heading: f64) -> Self {
        Pose {
            position: position.into(),
            heading: wrap_angle(heading),
        }
    }

    /// Unit forward vector of the pose.
    pub fn forward(self) -> Vec2 {
        Vec2::from_angle(self.heading)
    }
}

/// Wraps an angle to `(-pi, pi]`.
///
/// # Example
///
/// ```
/// use adassure_sim::geometry::wrap_angle;
/// use std::f64::consts::PI;
///
/// assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_angle(-3.5 * PI) - 0.5 * PI).abs() < 1e-12);
/// ```
pub fn wrap_angle(angle: f64) -> f64 {
    use std::f64::consts::{PI, TAU};
    let mut a = angle % TAU;
    if a <= -PI {
        a += TAU;
    } else if a > PI {
        a -= TAU;
    }
    a
}

/// Smallest signed difference `a - b` between two angles, in `(-pi, pi]`.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    wrap_angle(a - b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vector_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn dot_cross_and_angles() {
        let x = Vec2::new(1.0, 0.0);
        let y = Vec2::new(0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), 1.0);
        assert_eq!(y.cross(x), -1.0);
        assert!((y.angle() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn rotation_and_perp() {
        let x = Vec2::new(1.0, 0.0);
        let r = x.rotated(FRAC_PI_2);
        assert!((r.x).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
        assert_eq!(x.perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), None);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn wrap_angle_stays_in_range() {
        for k in -20..=20 {
            let a = f64::from(k) * 0.7;
            let w = wrap_angle(a);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "{a} -> {w}");
            // Wrapping must not change the direction.
            assert!((wrap_angle(w - a)).abs() < 1e-9);
        }
    }

    #[test]
    fn angle_diff_is_signed_shortest() {
        assert!((angle_diff(0.1, -0.1) - 0.2).abs() < 1e-12);
        assert!((angle_diff(-PI + 0.1, PI - 0.1) - 0.2).abs() < 1e-9);
        assert!((angle_diff(PI - 0.1, -PI + 0.1) + 0.2).abs() < 1e-9);
    }

    #[test]
    fn pose_wraps_heading_and_exposes_forward() {
        let p = Pose::new([1.0, 2.0], 3.0 * PI);
        assert!((p.heading - PI).abs() < 1e-12);
        let f = Pose::new([0.0, 0.0], FRAC_PI_2).forward();
        assert!(f.x.abs() < 1e-12 && (f.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conversions_from_tuples_and_arrays() {
        assert_eq!(Vec2::from([1.0, 2.0]), Vec2::new(1.0, 2.0));
        assert_eq!(Vec2::from((1.0, 2.0)), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
    }
}
