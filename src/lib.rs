//! ADAssure — assertion-based debugging for autonomous-driving control
//! algorithms (reproduction of the DATE 2024 ASD paper).
//!
//! This facade crate re-exports the whole workspace under one roof and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`):
//!
//! * [`core`] — the assertion engine: expression language, online/offline
//!   checkers, the A1–A16 catalog, root-cause diagnosis, threshold mining;
//! * [`sim`] — the driving-simulator substrate (bicycle dynamics, sensors,
//!   actuators, tracks, closed-loop engine);
//! * [`control`] — the AD control algorithms under debug (Pure Pursuit,
//!   Stanley, LQR, MPC, PID, estimator, full pipeline);
//! * [`attacks`] — sensor-channel attack injection;
//! * [`scenarios`] — the standard workload library and one-call runners;
//! * [`trace`] — the signal/trace recording substrate.
//!
//! # Quickstart
//!
//! ```
//! use adassure::control::ControllerKind;
//! use adassure::core::{catalog, checker, diagnosis};
//! use adassure::scenarios::{run, Scenario, ScenarioKind};
//!
//! # fn main() -> Result<(), adassure::sim::SimError> {
//! // 1. Run a scenario with the stock Pure Pursuit stack.
//! let scenario = Scenario::of_kind(ScenarioKind::Straight)?;
//! let out = run::clean(&scenario, ControllerKind::PurePursuit, 42)?;
//!
//! // 2. Check the recorded trace against the ADAssure catalog.
//! let cfg = catalog::CatalogConfig::default().with_goal_distance(scenario.route_length());
//! let report = checker::check(&catalog::build(&cfg), &out.trace);
//! assert!(report.is_clean(), "{}", report.summary());
//!
//! // 3. (On an attacked run the report would not be clean, and...)
//! let verdict = diagnosis::diagnose(&report);
//! assert!(verdict.top().is_none());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod guardian;

pub use adassure_attacks as attacks;
pub use adassure_control as control;
pub use adassure_core as core;
pub use adassure_scenarios as scenarios;
pub use adassure_sim as sim;
pub use adassure_trace as trace;
